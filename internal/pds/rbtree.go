package pds

import (
	"errors"
	"fmt"

	"repro/internal/mtm"
	"repro/internal/pmem"
)

// RBTree is a persistent red-black tree with 64-bit keys and a fixed
// 80-byte in-node payload, sized so every node is exactly 128 bytes — the
// structure of Table 5's comparison against Boost serialization: "We
// compare the cost of maintaining a red-black tree with 128 byte nodes in
// persistent memory against the cost of keeping it in DRAM and
// periodically serializing it."
//
// Node layout (128 bytes): left(8) right(8) parent(8) color(8) key(8)
// payload(88).
type RBTree struct {
	rootPtr pmem.Addr
}

// RBPayload is the fixed payload capacity of each node.
const RBPayload = 88

// RBNodeSize is the full node size, as in the paper.
const RBNodeSize = 128

const (
	rbLeftOff    = 0
	rbRightOff   = 8
	rbParentOff  = 16
	rbColorOff   = 24
	rbKeyOff     = 32
	rbPayloadOff = 40

	rbRed   = 0
	rbBlack = 1
)

// NewRBTree wraps the red-black tree rooted at the persistent pointer
// rootPtr (pmem.Nil there means an empty tree).
//
// Deprecated: new code should construct structures through the Backend
// selector (OrderedRBTree or NewOrderedMap); this wrapper remains for
// the structure-specific method set.
func NewRBTree(rootPtr pmem.Addr) *RBTree { return &RBTree{rootPtr: rootPtr} }

func (t *RBTree) root(tx mtm.Reader) pmem.Addr { return pmem.Addr(tx.LoadU64(t.rootPtr)) }

func rbLeft(tx mtm.Reader, n pmem.Addr) pmem.Addr  { return pmem.Addr(tx.LoadU64(n.Add(rbLeftOff))) }
func rbRight(tx mtm.Reader, n pmem.Addr) pmem.Addr { return pmem.Addr(tx.LoadU64(n.Add(rbRightOff))) }
func rbParent(tx mtm.Reader, n pmem.Addr) pmem.Addr {
	return pmem.Addr(tx.LoadU64(n.Add(rbParentOff)))
}
func rbKey(tx mtm.Reader, n pmem.Addr) uint64 { return tx.LoadU64(n.Add(rbKeyOff)) }

// rbColor treats nil as black, per the red-black convention.
func rbColor(tx mtm.Reader, n pmem.Addr) uint64 {
	if n == pmem.Nil {
		return rbBlack
	}
	return tx.LoadU64(n.Add(rbColorOff))
}

func rbSetColor(tx *mtm.Tx, n pmem.Addr, c uint64) { tx.StoreU64(n.Add(rbColorOff), c) }

// setChild links child under parent on side (0=left, 1=right), updating
// the child's parent pointer when non-nil.
func (t *RBTree) setChild(tx *mtm.Tx, parent pmem.Addr, side int, child pmem.Addr) {
	if parent == pmem.Nil {
		tx.StoreU64(t.rootPtr, uint64(child))
	} else if side == 0 {
		tx.StoreU64(parent.Add(rbLeftOff), uint64(child))
	} else {
		tx.StoreU64(parent.Add(rbRightOff), uint64(child))
	}
	if child != pmem.Nil {
		tx.StoreU64(child.Add(rbParentOff), uint64(parent))
	}
}

func (t *RBTree) sideOf(tx mtm.Reader, parent, child pmem.Addr) int {
	if rbLeft(tx, parent) == child {
		return 0
	}
	return 1
}

// rotateLeft rotates x's right child above it.
func (t *RBTree) rotateLeft(tx *mtm.Tx, x pmem.Addr) {
	y := rbRight(tx, x)
	p := rbParent(tx, x)
	side := 0
	if p != pmem.Nil {
		side = t.sideOf(tx, p, x)
	}
	t.setChild(tx, x, 1, rbLeft(tx, y))
	t.setChild(tx, y, 0, x)
	t.setChild(tx, p, side, y)
}

func (t *RBTree) rotateRight(tx *mtm.Tx, x pmem.Addr) {
	y := rbLeft(tx, x)
	p := rbParent(tx, x)
	side := 0
	if p != pmem.Nil {
		side = t.sideOf(tx, p, x)
	}
	t.setChild(tx, x, 0, rbRight(tx, y))
	t.setChild(tx, y, 1, x)
	t.setChild(tx, p, side, y)
}

// Insert adds or updates key with the given payload (at most RBPayload
// bytes).
func (t *RBTree) Insert(tx *mtm.Tx, key uint64, payload []byte) error {
	if len(payload) > RBPayload {
		return fmt.Errorf("pds: payload %d exceeds %d bytes", len(payload), RBPayload)
	}
	// Zero-pad to the full payload size so node contents never carry
	// stale bytes from block reuse.
	var padded [RBPayload]byte
	copy(padded[:], payload)

	// Standard BST descent.
	var parent pmem.Addr
	side := 0
	n := t.root(tx)
	for n != pmem.Nil {
		k := rbKey(tx, n)
		if key == k {
			tx.Store(n.Add(rbPayloadOff), padded[:])
			return nil
		}
		parent = n
		if key < k {
			side = 0
			n = rbLeft(tx, n)
		} else {
			side = 1
			n = rbRight(tx, n)
		}
	}
	node, err := tx.Alloc(RBNodeSize)
	if err != nil {
		return err
	}
	tx.StoreU64(node.Add(rbLeftOff), 0)
	tx.StoreU64(node.Add(rbRightOff), 0)
	tx.StoreU64(node.Add(rbKeyOff), key)
	rbSetColor(tx, node, rbRed)
	tx.Store(node.Add(rbPayloadOff), padded[:])
	t.setChild(tx, parent, side, node)
	t.insertFixup(tx, node)
	return nil
}

func (t *RBTree) insertFixup(tx *mtm.Tx, z pmem.Addr) {
	for {
		p := rbParent(tx, z)
		if p == pmem.Nil || rbColor(tx, p) == rbBlack {
			break
		}
		g := rbParent(tx, p)
		if rbLeft(tx, g) == p {
			u := rbRight(tx, g)
			if rbColor(tx, u) == rbRed {
				rbSetColor(tx, p, rbBlack)
				rbSetColor(tx, u, rbBlack)
				rbSetColor(tx, g, rbRed)
				z = g
				continue
			}
			if rbRight(tx, p) == z {
				z = p
				t.rotateLeft(tx, z)
				p = rbParent(tx, z)
			}
			rbSetColor(tx, p, rbBlack)
			rbSetColor(tx, g, rbRed)
			t.rotateRight(tx, g)
		} else {
			u := rbLeft(tx, g)
			if rbColor(tx, u) == rbRed {
				rbSetColor(tx, p, rbBlack)
				rbSetColor(tx, u, rbBlack)
				rbSetColor(tx, g, rbRed)
				z = g
				continue
			}
			if rbLeft(tx, p) == z {
				z = p
				t.rotateRight(tx, z)
				p = rbParent(tx, z)
			}
			rbSetColor(tx, p, rbBlack)
			rbSetColor(tx, g, rbRed)
			t.rotateLeft(tx, g)
		}
	}
	root := t.root(tx)
	rbSetColor(tx, root, rbBlack)
}

// Get copies the payload for key into a fresh slice.
func (t *RBTree) Get(tx mtm.Reader, key uint64) ([]byte, error) {
	n := t.root(tx)
	for n != pmem.Nil {
		k := rbKey(tx, n)
		switch {
		case key == k:
			out := make([]byte, RBPayload)
			tx.Load(out, n.Add(rbPayloadOff))
			return out, nil
		case key < k:
			n = rbLeft(tx, n)
		default:
			n = rbRight(tx, n)
		}
	}
	return nil, ErrNotFound
}

// Delete removes key, freeing its node.
func (t *RBTree) Delete(tx *mtm.Tx, key uint64) error {
	z := t.root(tx)
	for z != pmem.Nil && rbKey(tx, z) != key {
		if key < rbKey(tx, z) {
			z = rbLeft(tx, z)
		} else {
			z = rbRight(tx, z)
		}
	}
	if z == pmem.Nil {
		return ErrNotFound
	}

	// CLRS deletion: y is the node physically removed, x the child that
	// replaces it (possibly nil, tracked with its parent).
	y := z
	yColor := rbColor(tx, y)
	var x, xParent pmem.Addr
	switch {
	case rbLeft(tx, z) == pmem.Nil:
		x = rbRight(tx, z)
		xParent = rbParent(tx, z)
		t.transplant(tx, z, x)
	case rbRight(tx, z) == pmem.Nil:
		x = rbLeft(tx, z)
		xParent = rbParent(tx, z)
		t.transplant(tx, z, x)
	default:
		y = t.minimum(tx, rbRight(tx, z))
		yColor = rbColor(tx, y)
		x = rbRight(tx, y)
		if rbParent(tx, y) == z {
			xParent = y
		} else {
			xParent = rbParent(tx, y)
			t.transplant(tx, y, x)
			t.setChild(tx, y, 1, rbRight(tx, z))
		}
		t.transplant(tx, z, y)
		t.setChild(tx, y, 0, rbLeft(tx, z))
		rbSetColor(tx, y, rbColor(tx, z))
	}
	if err := tx.FreeBlock(z); err != nil {
		return err
	}
	if yColor == rbBlack {
		t.deleteFixup(tx, x, xParent)
	}
	return nil
}

// transplant replaces subtree u by subtree v in u's parent.
func (t *RBTree) transplant(tx *mtm.Tx, u, v pmem.Addr) {
	p := rbParent(tx, u)
	if p == pmem.Nil {
		t.setChild(tx, pmem.Nil, 0, v)
	} else {
		t.setChild(tx, p, t.sideOf(tx, p, u), v)
	}
}

func (t *RBTree) minimum(tx mtm.Reader, n pmem.Addr) pmem.Addr {
	for rbLeft(tx, n) != pmem.Nil {
		n = rbLeft(tx, n)
	}
	return n
}

// deleteFixup restores red-black properties after removing a black node;
// x may be nil, so its parent is tracked explicitly.
func (t *RBTree) deleteFixup(tx *mtm.Tx, x, xParent pmem.Addr) {
	for x != t.root(tx) && rbColor(tx, x) == rbBlack {
		if xParent == pmem.Nil {
			break
		}
		if rbLeft(tx, xParent) == x {
			w := rbRight(tx, xParent)
			if rbColor(tx, w) == rbRed {
				rbSetColor(tx, w, rbBlack)
				rbSetColor(tx, xParent, rbRed)
				t.rotateLeft(tx, xParent)
				w = rbRight(tx, xParent)
			}
			if rbColor(tx, rbLeft(tx, w)) == rbBlack && rbColor(tx, rbRight(tx, w)) == rbBlack {
				rbSetColor(tx, w, rbRed)
				x = xParent
				xParent = rbParent(tx, x)
			} else {
				if rbColor(tx, rbRight(tx, w)) == rbBlack {
					if l := rbLeft(tx, w); l != pmem.Nil {
						rbSetColor(tx, l, rbBlack)
					}
					rbSetColor(tx, w, rbRed)
					t.rotateRight(tx, w)
					w = rbRight(tx, xParent)
				}
				rbSetColor(tx, w, rbColor(tx, xParent))
				rbSetColor(tx, xParent, rbBlack)
				if r := rbRight(tx, w); r != pmem.Nil {
					rbSetColor(tx, r, rbBlack)
				}
				t.rotateLeft(tx, xParent)
				x = t.root(tx)
				xParent = pmem.Nil
			}
		} else {
			w := rbLeft(tx, xParent)
			if rbColor(tx, w) == rbRed {
				rbSetColor(tx, w, rbBlack)
				rbSetColor(tx, xParent, rbRed)
				t.rotateRight(tx, xParent)
				w = rbLeft(tx, xParent)
			}
			if rbColor(tx, rbRight(tx, w)) == rbBlack && rbColor(tx, rbLeft(tx, w)) == rbBlack {
				rbSetColor(tx, w, rbRed)
				x = xParent
				xParent = rbParent(tx, x)
			} else {
				if rbColor(tx, rbLeft(tx, w)) == rbBlack {
					if r := rbRight(tx, w); r != pmem.Nil {
						rbSetColor(tx, r, rbBlack)
					}
					rbSetColor(tx, w, rbRed)
					t.rotateLeft(tx, w)
					w = rbLeft(tx, xParent)
				}
				rbSetColor(tx, w, rbColor(tx, xParent))
				rbSetColor(tx, xParent, rbBlack)
				if l := rbLeft(tx, w); l != pmem.Nil {
					rbSetColor(tx, l, rbBlack)
				}
				t.rotateRight(tx, xParent)
				x = t.root(tx)
				xParent = pmem.Nil
			}
		}
	}
	if x != pmem.Nil {
		rbSetColor(tx, x, rbBlack)
	}
}

// InOrder visits every (key, payload) in ascending key order until fn
// returns false. The serializer baseline uses this traversal.
func (t *RBTree) InOrder(tx mtm.Reader, fn func(key uint64, payload []byte) bool) {
	payload := make([]byte, RBPayload)
	var walk func(n pmem.Addr) bool
	walk = func(n pmem.Addr) bool {
		if n == pmem.Nil {
			return true
		}
		if !walk(rbLeft(tx, n)) {
			return false
		}
		tx.Load(payload, n.Add(rbPayloadOff))
		if !fn(rbKey(tx, n), payload) {
			return false
		}
		return walk(rbRight(tx, n))
	}
	walk(t.root(tx))
}

// Contains reports whether key is present without copying its payload.
func (t *RBTree) Contains(tx mtm.Reader, key uint64) bool {
	n := t.root(tx)
	for n != pmem.Nil {
		k := rbKey(tx, n)
		switch {
		case key == k:
			return true
		case key < k:
			n = rbLeft(tx, n)
		default:
			n = rbRight(tx, n)
		}
	}
	return false
}

// Len counts the entries (O(n), for tests).
func (t *RBTree) Len(tx mtm.Reader) int {
	n := 0
	t.InOrder(tx, func(uint64, []byte) bool { n++; return true })
	return n
}

// CheckInvariants verifies the red-black properties: binary order, no red
// node with a red child, and equal black heights on every path.
func (t *RBTree) CheckInvariants(tx mtm.Reader) error {
	root := t.root(tx)
	if root == pmem.Nil {
		return nil
	}
	if rbColor(tx, root) != rbBlack {
		return errors.New("pds: red root")
	}
	var walk func(n pmem.Addr, lo, hi uint64, hasLo, hasHi bool) (int, error)
	walk = func(n pmem.Addr, lo, hi uint64, hasLo, hasHi bool) (int, error) {
		if n == pmem.Nil {
			return 1, nil
		}
		k := rbKey(tx, n)
		if hasLo && k <= lo {
			return 0, fmt.Errorf("pds: key %d violates lower bound", k)
		}
		if hasHi && k >= hi {
			return 0, fmt.Errorf("pds: key %d violates upper bound", k)
		}
		l, r := rbLeft(tx, n), rbRight(tx, n)
		if rbColor(tx, n) == rbRed &&
			(rbColor(tx, l) == rbRed || rbColor(tx, r) == rbRed) {
			return 0, fmt.Errorf("pds: red node %d has red child", k)
		}
		for _, c := range []pmem.Addr{l, r} {
			if c != pmem.Nil && rbParent(tx, c) != n {
				return 0, fmt.Errorf("pds: bad parent pointer under %d", k)
			}
		}
		lb, err := walk(l, lo, k, hasLo, true)
		if err != nil {
			return 0, err
		}
		rb, err := walk(r, k, hi, true, hasHi)
		if err != nil {
			return 0, err
		}
		if lb != rb {
			return 0, fmt.Errorf("pds: black height mismatch at %d (%d vs %d)", k, lb, rb)
		}
		if rbColor(tx, n) == rbBlack {
			lb++
		}
		return lb, nil
	}
	_, err := walk(root, 0, 0, false, false)
	return err
}
