package pds

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/region"
	"repro/internal/scm"
)

func queueEnv(t *testing.T, capacity int, cellSize int64) (*scm.Device, *region.Mem, *RingQueue) {
	t.Helper()
	dev, err := scm.Open(scm.Config{Size: 16 << 20, Mode: scm.DelayOff})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := region.Open(dev, region.Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	base, err := rt.PMap(QueueSize(capacity, cellSize), 0)
	if err != nil {
		t.Fatal(err)
	}
	mem := rt.NewMemory()
	q, err := CreateQueue(mem, base, capacity, cellSize)
	if err != nil {
		t.Fatal(err)
	}
	return dev, mem, q
}

func TestQueueFIFO(t *testing.T) {
	_, mem, q := queueEnv(t, 8, 64)
	for i := 0; i < 5; i++ {
		if err := q.Enqueue(mem, []byte(fmt.Sprintf("item-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if q.Len(mem) != 5 {
		t.Fatalf("len = %d", q.Len(mem))
	}
	if v, err := q.Peek(mem); err != nil || string(v) != "item-0" {
		t.Fatalf("peek = %q, %v", v, err)
	}
	for i := 0; i < 5; i++ {
		v, err := q.Dequeue(mem)
		if err != nil || string(v) != fmt.Sprintf("item-%d", i) {
			t.Fatalf("dequeue %d = %q, %v", i, v, err)
		}
	}
	if _, err := q.Dequeue(mem); err != ErrQueueEmpty {
		t.Fatalf("empty dequeue: %v", err)
	}
}

func TestQueueFullAndWrap(t *testing.T) {
	_, mem, q := queueEnv(t, 4, 32)
	for i := 0; i < 4; i++ {
		if err := q.Enqueue(mem, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := q.Enqueue(mem, []byte{9}); err != ErrQueueFull {
		t.Fatalf("full enqueue: %v", err)
	}
	// Wrap many times.
	for round := 0; round < 50; round++ {
		v, err := q.Dequeue(mem)
		if err != nil {
			t.Fatal(err)
		}
		if v[0] != byte(round) {
			t.Fatalf("round %d: got %d", round, v[0])
		}
		if err := q.Enqueue(mem, []byte{byte(round + 4)}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestQueueOversizeRejected(t *testing.T) {
	_, mem, q := queueEnv(t, 4, 32)
	if err := q.Enqueue(mem, make([]byte, 25)); err == nil {
		t.Fatal("oversize element accepted")
	}
}

func TestQueueEnqueueDurableAtReturn(t *testing.T) {
	dev, mem, q := queueEnv(t, 16, 64)
	for i := 0; i < 10; i++ {
		if err := q.Enqueue(mem, []byte(fmt.Sprintf("msg%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	dev.Crash(scm.DropAll{})
	q2, err := OpenQueue(mem, q.base)
	if err != nil {
		t.Fatal(err)
	}
	if q2.Len(mem) != 10 {
		t.Fatalf("len after crash = %d", q2.Len(mem))
	}
	for i := 0; i < 10; i++ {
		v, err := q2.Dequeue(mem)
		if err != nil || string(v) != fmt.Sprintf("msg%02d", i) {
			t.Fatalf("item %d after crash = %q, %v", i, v, err)
		}
	}
}

func TestQueueIncompleteAppendDiscarded(t *testing.T) {
	// Write a cell without the publishing tail update (the crash window
	// inside Enqueue), then crash: the element must be invisible.
	dev, mem, q := queueEnv(t, 8, 64)
	if err := q.Enqueue(mem, []byte("published")); err != nil {
		t.Fatal(err)
	}
	tail := mem.LoadU64(q.base.Add(pqTailOff))
	cell := q.cell(tail)
	mem.WTStoreU64(cell, 7)
	mem.WTStore(cell.Add(8), []byte("orphan!"))
	mem.Fence()
	// No tail bump. Crash.
	dev.Crash(scm.DropAll{})
	q2, err := OpenQueue(mem, q.base)
	if err != nil {
		t.Fatal(err)
	}
	if q2.Len(mem) != 1 {
		t.Fatalf("len = %d, want 1", q2.Len(mem))
	}
	v, err := q2.Dequeue(mem)
	if err != nil || string(v) != "published" {
		t.Fatalf("got %q, %v", v, err)
	}
	if _, err := q2.Dequeue(mem); err != ErrQueueEmpty {
		t.Fatalf("orphan cell visible: %v", err)
	}
}

func TestQueueRandomCrashNeverTears(t *testing.T) {
	// Under random crashes mid-stream, the queue must always contain a
	// prefix-consistent sequence: exactly the published elements, each
	// intact.
	for seed := int64(0); seed < 25; seed++ {
		dev, mem, q := queueEnv(t, 32, 64)
		published := 0
		for i := 0; i < 10; i++ {
			if err := q.Enqueue(mem, bytes.Repeat([]byte{byte(i)}, 40)); err != nil {
				t.Fatal(err)
			}
			published++
		}
		// One more enqueue's cell write, unpublished, then crash.
		tail := mem.LoadU64(q.base.Add(pqTailOff))
		cell := q.cell(tail)
		mem.WTStoreU64(cell, 40)
		mem.WTStore(cell.Add(8), bytes.Repeat([]byte{0xEE}, 40))
		dev.Crash(scm.NewRandomPolicy(seed))

		q2, err := OpenQueue(mem, q.base)
		if err != nil {
			t.Fatal(err)
		}
		if got := q2.Len(mem); got != published {
			t.Fatalf("seed %d: len = %d, want %d", seed, got, published)
		}
		for i := 0; i < published; i++ {
			v, err := q2.Dequeue(mem)
			if err != nil || len(v) != 40 {
				t.Fatalf("seed %d: item %d: %v %v", seed, i, v, err)
			}
			for _, b := range v {
				if b != byte(i) {
					t.Fatalf("seed %d: item %d torn", seed, i)
				}
			}
		}
	}
}
