package pds

import (
	"errors"
	"fmt"

	"repro/internal/pmem"
)

// Queue is a persistent single-producer/single-consumer ring of
// fixed-size cells built directly on the persistence primitives — no
// transactions. It demonstrates the paper's append-update method
// (Table 2): "An append update ... writes new data to empty space after
// the previous update, thus never modifying existing data. The individual
// stores comprising an append update are unordered, but separate appends
// must complete in order."
//
// Enqueue streams the payload into the next free cell (stores unordered),
// fences, and then publishes it with a durable single-variable update of
// the tail index. A crash between the two leaves an unpublished cell —
// "after a failure, an incomplete append (there can be only one) is
// discarded". Dequeue is a durable head bump; a crash after reading but
// before bumping redelivers the element (at-least-once consumption).
//
// Layout: magic(8) capacity(8) cellSize(8) head(8) tail(8) pad(24) cells.
type RingQueue struct {
	base     pmem.Addr
	capacity uint64
	cellSize int64
}

// pqMagicV spells "MNPQUEUE".
const pqMagicV = 0x4d4e5051_55455545

const (
	pqCapOff   = 8
	pqCellOff  = 16
	pqHeadOff  = 24
	pqTailOff  = 32
	pqCellsOff = 64
)

// ErrQueueFull reports an enqueue into a full ring.
var ErrQueueFull = errors.New("pds: queue full")

// ErrQueueEmpty reports a dequeue from an empty ring.
var ErrQueueEmpty = errors.New("pds: queue empty")

// QueueSize returns the persistent footprint of a queue with the given
// geometry.
func QueueSize(capacity int, cellSize int64) int64 {
	return pqCellsOff + int64(capacity)*cellSize
}

// CreateQueue formats a queue at base. cellSize includes an 8-byte length
// header, so payloads up to cellSize-8 bytes fit.
//
// Deprecated: new code should construct queues through the Backend
// selector (NewQueue), which formats or reopens as needed.
func CreateQueue(mem pmem.Memory, base pmem.Addr, capacity int, cellSize int64) (*RingQueue, error) {
	if capacity < 2 || cellSize < 16 || cellSize%8 != 0 {
		return nil, fmt.Errorf("pds: bad queue geometry %d x %d", capacity, cellSize)
	}
	q := &RingQueue{base: base, capacity: uint64(capacity), cellSize: cellSize}
	mem.WTStoreU64(base.Add(pqCapOff), uint64(capacity))
	mem.WTStoreU64(base.Add(pqCellOff), uint64(cellSize))
	mem.WTStoreU64(base.Add(pqHeadOff), 0)
	mem.WTStoreU64(base.Add(pqTailOff), 0)
	mem.Fence()
	mem.WTStoreU64(base, pqMagicV)
	mem.Fence()
	return q, nil
}

// OpenQueue attaches to an existing queue. Published elements are exactly
// those between head and tail; an interrupted enqueue is invisible by
// construction.
//
// Deprecated: new code should construct queues through the Backend
// selector (NewQueue), which formats or reopens as needed.
func OpenQueue(mem pmem.Memory, base pmem.Addr) (*RingQueue, error) {
	if mem.LoadU64(base) != pqMagicV {
		return nil, fmt.Errorf("pds: no queue at %v", base)
	}
	return &RingQueue{
		base:     base,
		capacity: mem.LoadU64(base.Add(pqCapOff)),
		cellSize: int64(mem.LoadU64(base.Add(pqCellOff))),
	}, nil
}

func (q *RingQueue) cell(i uint64) pmem.Addr {
	return q.base.Add(pqCellsOff + int64(i%q.capacity)*q.cellSize)
}

// Len reports the number of published, unconsumed elements.
func (q *RingQueue) Len(mem pmem.Memory) int {
	return int(mem.LoadU64(q.base.Add(pqTailOff)) - mem.LoadU64(q.base.Add(pqHeadOff)))
}

// Enqueue appends data (at most cellSize-8 bytes) durably. When Enqueue
// returns, the element survives any crash.
func (q *RingQueue) Enqueue(mem pmem.Memory, data []byte) error {
	if int64(len(data)) > q.cellSize-8 {
		return fmt.Errorf("pds: element of %d bytes exceeds cell payload %d", len(data), q.cellSize-8)
	}
	head := mem.LoadU64(q.base.Add(pqHeadOff))
	tail := mem.LoadU64(q.base.Add(pqTailOff))
	if tail-head >= q.capacity {
		return ErrQueueFull
	}
	cell := q.cell(tail)
	// The append's stores are unordered among themselves...
	mem.WTStoreU64(cell, uint64(len(data)))
	if len(data) > 0 {
		mem.WTStore(cell.Add(8), data)
	}
	mem.Fence() // ...but must complete before the publishing update.
	pmem.StoreDurable(mem, q.base.Add(pqTailOff), tail+1)
	return nil
}

// Dequeue removes and returns the oldest element. Consumption is
// at-least-once: a crash after the caller observes the data but before
// Dequeue's head bump redelivers it on recovery.
func (q *RingQueue) Dequeue(mem pmem.Memory) ([]byte, error) {
	head := mem.LoadU64(q.base.Add(pqHeadOff))
	tail := mem.LoadU64(q.base.Add(pqTailOff))
	if head == tail {
		return nil, ErrQueueEmpty
	}
	cell := q.cell(head)
	n := mem.LoadU64(cell)
	if int64(n) > q.cellSize-8 {
		return nil, fmt.Errorf("pds: corrupt queue cell at %v", cell)
	}
	out := make([]byte, n)
	if n > 0 {
		mem.Load(out, cell.Add(8))
	}
	pmem.StoreDurable(mem, q.base.Add(pqHeadOff), head+1)
	return out, nil
}

// Peek returns the oldest element without consuming it.
func (q *RingQueue) Peek(mem pmem.Memory) ([]byte, error) {
	head := mem.LoadU64(q.base.Add(pqHeadOff))
	if head == mem.LoadU64(q.base.Add(pqTailOff)) {
		return nil, ErrQueueEmpty
	}
	cell := q.cell(head)
	n := mem.LoadU64(cell)
	out := make([]byte, n)
	if n > 0 {
		mem.Load(out, cell.Add(8))
	}
	return out, nil
}
