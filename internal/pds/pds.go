// Package pds provides persistent data structures built on Mnemosyne's
// durable memory transactions: the chained hash table of the paper's
// microbenchmarks (§6.3), the AVL tree used by the OpenLDAP conversion
// (§6.2), the B+ tree used by the Tokyo Cabinet conversion (§6.2), and the
// red-black tree of the serialization comparison (Table 5).
//
// Every structure stores plain persistent addresses (pmem.Addr) in its
// nodes and performs all reads and writes through a transaction, so any
// mutation is atomic, durable and isolated. Structures are addressed by a
// persistent root pointer owned by the caller (typically a pstatic
// variable or a pmalloc'd block), exactly like the paper's converted
// applications.
package pds

import (
	"repro/internal/blob"
	"repro/internal/mtm"
	"repro/internal/pmem"
)

// Value blocks hold variable-length values out-of-line:
// [0] length, [8...] bytes.
const valueHdr = 8

// MaxValue caps a single stored value. The servers enforce tighter
// protocol-level caps (shard.MaxValueLen); this one exists so the decode
// path can tell a plausible length from a corrupt one.
const MaxValue = 1 << 24

// writeValue allocates a value block and fills it transactionally.
// Zero-length values are valid and allocate a bare header.
func writeValue(tx *mtm.Tx, val []byte) (pmem.Addr, error) {
	if err := blob.CheckWrite(int64(len(val)), MaxValue); err != nil {
		return pmem.Nil, err
	}
	blk, err := tx.Alloc(valueHdr + int64(len(val)))
	if err != nil {
		return pmem.Nil, err
	}
	tx.StoreU64(blk, uint64(len(val)))
	if len(val) > 0 {
		tx.Store(blk.Add(valueHdr), val)
	}
	return blk, nil
}

// readValue copies a value block's contents. It needs only Reader, so it
// runs inside both writing transactions and snapshot Views. The stored
// length is validated before it sizes an allocation: a corrupt prefix
// fails with blob.ErrCorrupt instead of attempting a wild make().
func readValue(tx mtm.Reader, blk pmem.Addr) ([]byte, error) {
	n := int64(tx.LoadU64(blk))
	if err := blob.CheckRead(n, MaxValue); err != nil {
		return nil, err
	}
	out := make([]byte, n)
	if n > 0 {
		tx.Load(out, blk.Add(valueHdr))
	}
	return out, nil
}

// hash64 is the 64-bit finalizer of SplitMix64, used to spread integer
// keys over hash buckets.
func hash64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}
