package pds

import (
	"bytes"
	"errors"
	"fmt"

	"repro/internal/mtm"
	"repro/internal/pmem"
)

// AVL is a persistent AVL tree with byte-string keys and variable-length
// values. This is the structure the paper's OpenLDAP conversion makes
// persistent: "The cache is organized using an AVL tree, which we make
// persistent by allocating nodes with pmalloc and placing atomic blocks
// around updates" (§6.2).
//
// Node layout: left(8) right(8) height(8) klen(8) vblk(8) key bytes.
// Values live in out-of-line value blocks so replacing a value never moves
// the node.
type AVL struct {
	rootPtr pmem.Addr // persistent pointer to the root node
}

const (
	avlLeftOff   = 0
	avlRightOff  = 8
	avlHeightOff = 16
	avlKlenOff   = 24
	avlVblkOff   = 32
	avlKeyOff    = 40
)

// NewAVL wraps the AVL tree rooted at the persistent pointer rootPtr
// (pmem.Nil there means an empty tree).
//
// Deprecated: new code should construct structures through the Backend
// selector (OrderedAVL or NewOrderedMap); this wrapper remains for the
// structure-specific method set.
func NewAVL(rootPtr pmem.Addr) *AVL { return &AVL{rootPtr: rootPtr} }

func avlKey(tx mtm.Reader, node pmem.Addr) []byte {
	n := int64(tx.LoadU64(node.Add(avlKlenOff)))
	k := make([]byte, n)
	if n > 0 {
		tx.Load(k, node.Add(avlKeyOff))
	}
	return k
}

func avlHeight(tx mtm.Reader, node pmem.Addr) int64 {
	if node == pmem.Nil {
		return 0
	}
	return int64(tx.LoadU64(node.Add(avlHeightOff)))
}

func avlFix(tx *mtm.Tx, node pmem.Addr) {
	l := avlHeight(tx, pmem.Addr(tx.LoadU64(node.Add(avlLeftOff))))
	r := avlHeight(tx, pmem.Addr(tx.LoadU64(node.Add(avlRightOff))))
	h := l
	if r > h {
		h = r
	}
	// Only write when the height actually changes: unconditional stores
	// would write-lock every ancestor on every insert, serializing
	// concurrent updates to disjoint subtrees.
	if int64(tx.LoadU64(node.Add(avlHeightOff))) != h+1 {
		tx.StoreU64(node.Add(avlHeightOff), uint64(h+1))
	}
}

func avlBalance(tx mtm.Reader, node pmem.Addr) int64 {
	l := avlHeight(tx, pmem.Addr(tx.LoadU64(node.Add(avlLeftOff))))
	r := avlHeight(tx, pmem.Addr(tx.LoadU64(node.Add(avlRightOff))))
	return l - r
}

// rotate performs a single rotation at *link. dir=left rotates left
// (right child rises), dir=right rotates right.
func avlRotateLeft(tx *mtm.Tx, link pmem.Addr) {
	node := pmem.Addr(tx.LoadU64(link))
	r := pmem.Addr(tx.LoadU64(node.Add(avlRightOff)))
	rl := tx.LoadU64(r.Add(avlLeftOff))
	tx.StoreU64(node.Add(avlRightOff), rl)
	tx.StoreU64(r.Add(avlLeftOff), uint64(node))
	tx.StoreU64(link, uint64(r))
	avlFix(tx, node)
	avlFix(tx, r)
}

func avlRotateRight(tx *mtm.Tx, link pmem.Addr) {
	node := pmem.Addr(tx.LoadU64(link))
	l := pmem.Addr(tx.LoadU64(node.Add(avlLeftOff)))
	lr := tx.LoadU64(l.Add(avlRightOff))
	tx.StoreU64(node.Add(avlLeftOff), lr)
	tx.StoreU64(l.Add(avlRightOff), uint64(node))
	tx.StoreU64(link, uint64(l))
	avlFix(tx, node)
	avlFix(tx, l)
}

// rebalance restores the AVL invariant at *link after an insert or delete
// below it.
func avlRebalance(tx *mtm.Tx, link pmem.Addr) {
	node := pmem.Addr(tx.LoadU64(link))
	if node == pmem.Nil {
		return
	}
	avlFix(tx, node)
	switch b := avlBalance(tx, node); {
	case b > 1:
		left := pmem.Addr(tx.LoadU64(node.Add(avlLeftOff)))
		if avlBalance(tx, left) < 0 {
			avlRotateLeft(tx, node.Add(avlLeftOff))
		}
		avlRotateRight(tx, link)
	case b < -1:
		right := pmem.Addr(tx.LoadU64(node.Add(avlRightOff)))
		if avlBalance(tx, right) > 0 {
			avlRotateRight(tx, node.Add(avlRightOff))
		}
		avlRotateLeft(tx, link)
	}
}

// Put inserts or replaces the value for key.
func (t *AVL) Put(tx *mtm.Tx, key, val []byte) error {
	if len(key) == 0 {
		return errors.New("pds: empty AVL key")
	}
	_, err := t.put(tx, t.rootPtr, key, val)
	return err
}

func (t *AVL) put(tx *mtm.Tx, link pmem.Addr, key, val []byte) (grew bool, err error) {
	node := pmem.Addr(tx.LoadU64(link))
	if node == pmem.Nil {
		n, err := tx.Alloc(avlKeyOff + int64(len(key)))
		if err != nil {
			return false, err
		}
		vblk, err := writeValue(tx, val)
		if err != nil {
			return false, err
		}
		tx.StoreU64(n.Add(avlLeftOff), 0)
		tx.StoreU64(n.Add(avlRightOff), 0)
		tx.StoreU64(n.Add(avlHeightOff), 1)
		tx.StoreU64(n.Add(avlKlenOff), uint64(len(key)))
		tx.StoreU64(n.Add(avlVblkOff), uint64(vblk))
		tx.Store(n.Add(avlKeyOff), key)
		tx.StoreU64(link, uint64(n))
		return true, nil
	}
	switch cmp := bytes.Compare(key, avlKey(tx, node)); {
	case cmp == 0:
		// Replace the value block.
		old := pmem.Addr(tx.LoadU64(node.Add(avlVblkOff)))
		vblk, err := writeValue(tx, val)
		if err != nil {
			return false, err
		}
		tx.StoreU64(node.Add(avlVblkOff), uint64(vblk))
		if old != pmem.Nil {
			if err := tx.FreeBlock(old); err != nil {
				return false, err
			}
		}
		return false, nil
	case cmp < 0:
		grew, err = t.put(tx, node.Add(avlLeftOff), key, val)
	default:
		grew, err = t.put(tx, node.Add(avlRightOff), key, val)
	}
	if err != nil {
		return false, err
	}
	if grew {
		avlRebalance(tx, link)
	}
	return grew, nil
}

// Get returns a copy of the value for key.
func (t *AVL) Get(tx mtm.Reader, key []byte) ([]byte, error) {
	node := pmem.Addr(tx.LoadU64(t.rootPtr))
	for node != pmem.Nil {
		switch cmp := bytes.Compare(key, avlKey(tx, node)); {
		case cmp == 0:
			return readValue(tx, pmem.Addr(tx.LoadU64(node.Add(avlVblkOff))))
		case cmp < 0:
			node = pmem.Addr(tx.LoadU64(node.Add(avlLeftOff)))
		default:
			node = pmem.Addr(tx.LoadU64(node.Add(avlRightOff)))
		}
	}
	return nil, ErrNotFound
}

// Scan visits keys >= from in ascending byte order until fn returns
// false.
func (t *AVL) Scan(tx mtm.Reader, from []byte, fn func(key, val []byte) bool) {
	avlScan(tx, pmem.Addr(tx.LoadU64(t.rootPtr)), from, fn)
}

func avlScan(tx mtm.Reader, node pmem.Addr, from []byte, fn func(key, val []byte) bool) bool {
	if node == pmem.Nil {
		return true
	}
	k := avlKey(tx, node)
	if bytes.Compare(k, from) >= 0 {
		if !avlScan(tx, pmem.Addr(tx.LoadU64(node.Add(avlLeftOff))), from, fn) {
			return false
		}
		val, err := readValue(tx, pmem.Addr(tx.LoadU64(node.Add(avlVblkOff))))
		if err != nil {
			// A scan has no error channel; a corrupt length prefix here
			// is structural damage, same class as a torn node.
			panic(fmt.Sprintf("pds: avl scan at key %q: %v", k, err))
		}
		if !fn(k, val) {
			return false
		}
	}
	return avlScan(tx, pmem.Addr(tx.LoadU64(node.Add(avlRightOff))), from, fn)
}

// Delete removes key and frees its node and value block.
func (t *AVL) Delete(tx *mtm.Tx, key []byte) error {
	found, err := t.del(tx, t.rootPtr, key)
	if err != nil {
		return err
	}
	if !found {
		return ErrNotFound
	}
	return nil
}

func (t *AVL) del(tx *mtm.Tx, link pmem.Addr, key []byte) (bool, error) {
	node := pmem.Addr(tx.LoadU64(link))
	if node == pmem.Nil {
		return false, nil
	}
	var found bool
	var err error
	switch cmp := bytes.Compare(key, avlKey(tx, node)); {
	case cmp < 0:
		found, err = t.del(tx, node.Add(avlLeftOff), key)
	case cmp > 0:
		found, err = t.del(tx, node.Add(avlRightOff), key)
	default:
		left := pmem.Addr(tx.LoadU64(node.Add(avlLeftOff)))
		right := pmem.Addr(tx.LoadU64(node.Add(avlRightOff)))
		switch {
		case left == pmem.Nil:
			tx.StoreU64(link, uint64(right))
		case right == pmem.Nil:
			tx.StoreU64(link, uint64(left))
		default:
			// Two children: splice out the in-order successor and
			// put it in node's place.
			succ, err := avlUnlinkMin(tx, node.Add(avlRightOff))
			if err != nil {
				return false, err
			}
			tx.StoreU64(succ.Add(avlLeftOff), tx.LoadU64(node.Add(avlLeftOff)))
			tx.StoreU64(succ.Add(avlRightOff), tx.LoadU64(node.Add(avlRightOff)))
			tx.StoreU64(link, uint64(succ))
			avlRebalance(tx, link)
		}
		vblk := pmem.Addr(tx.LoadU64(node.Add(avlVblkOff)))
		if vblk != pmem.Nil {
			if err := tx.FreeBlock(vblk); err != nil {
				return false, err
			}
		}
		if err := tx.FreeBlock(node); err != nil {
			return false, err
		}
		found = true
	}
	if err != nil {
		return false, err
	}
	if found {
		avlRebalance(tx, link)
	}
	return found, nil
}

// avlUnlinkMin removes and returns the minimum node of the subtree at
// *link, rebalancing on the way out.
func avlUnlinkMin(tx *mtm.Tx, link pmem.Addr) (pmem.Addr, error) {
	node := pmem.Addr(tx.LoadU64(link))
	left := pmem.Addr(tx.LoadU64(node.Add(avlLeftOff)))
	if left == pmem.Nil {
		tx.StoreU64(link, tx.LoadU64(node.Add(avlRightOff)))
		return node, nil
	}
	min, err := avlUnlinkMin(tx, node.Add(avlLeftOff))
	if err != nil {
		return pmem.Nil, err
	}
	avlRebalance(tx, link)
	return min, nil
}

// Contains reports whether key is present without copying its value.
func (t *AVL) Contains(tx mtm.Reader, key []byte) bool {
	node := pmem.Addr(tx.LoadU64(t.rootPtr))
	for node != pmem.Nil {
		switch cmp := bytes.Compare(key, avlKey(tx, node)); {
		case cmp == 0:
			return true
		case cmp < 0:
			node = pmem.Addr(tx.LoadU64(node.Add(avlLeftOff)))
		default:
			node = pmem.Addr(tx.LoadU64(node.Add(avlRightOff)))
		}
	}
	return false
}

// Len counts the entries (O(n), for tests).
func (t *AVL) Len(tx mtm.Reader) int {
	return avlCount(tx, pmem.Addr(tx.LoadU64(t.rootPtr)))
}

func avlCount(tx mtm.Reader, node pmem.Addr) int {
	if node == pmem.Nil {
		return 0
	}
	return 1 + avlCount(tx, pmem.Addr(tx.LoadU64(node.Add(avlLeftOff)))) +
		avlCount(tx, pmem.Addr(tx.LoadU64(node.Add(avlRightOff))))
}

// Height returns the tree height (for invariant tests).
func (t *AVL) Height(tx mtm.Reader) int64 {
	return avlHeight(tx, pmem.Addr(tx.LoadU64(t.rootPtr)))
}

// CheckInvariants walks the tree verifying AVL balance, height fields and
// key ordering; it returns false on any violation (used by property
// tests).
func (t *AVL) CheckInvariants(tx mtm.Reader) bool {
	ok := true
	var walk func(node pmem.Addr, lo, hi []byte) int64
	walk = func(node pmem.Addr, lo, hi []byte) int64 {
		if node == pmem.Nil {
			return 0
		}
		k := avlKey(tx, node)
		if lo != nil && bytes.Compare(k, lo) <= 0 {
			ok = false
		}
		if hi != nil && bytes.Compare(k, hi) >= 0 {
			ok = false
		}
		lh := walk(pmem.Addr(tx.LoadU64(node.Add(avlLeftOff))), lo, k)
		rh := walk(pmem.Addr(tx.LoadU64(node.Add(avlRightOff))), k, hi)
		if lh-rh > 1 || rh-lh > 1 {
			ok = false
		}
		h := lh
		if rh > h {
			h = rh
		}
		if int64(tx.LoadU64(node.Add(avlHeightOff))) != h+1 {
			ok = false
		}
		return h + 1
	}
	walk(pmem.Addr(tx.LoadU64(t.rootPtr)), nil, nil)
	return ok
}
