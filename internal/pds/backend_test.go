package pds

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/mtm"
	"repro/internal/pds/mod"
	"repro/internal/pheap"
	"repro/internal/pmem"
	"repro/internal/region"
	"repro/internal/scm"
)

// benv hosts both backends over one device: the mtm stack for
// BackendMTM and the raw runtime/heap handles for BackendMOD.
type benv struct {
	dev  *scm.Device
	dir  string
	rt   *region.Runtime
	heap *pheap.Heap
	tm   *mtm.TM
	th   *mtm.Thread

	rootMTM pmem.Addr
	rootMOD pmem.Addr
}

func newBEnv(t *testing.T) *benv {
	t.Helper()
	dev, err := scm.Open(scm.Config{Size: 128 << 20, Mode: scm.DelayOff})
	if err != nil {
		t.Fatal(err)
	}
	e := &benv{dev: dev, dir: t.TempDir()}
	e.open(t)
	return e
}

func (e *benv) open(t *testing.T) {
	t.Helper()
	rt, err := region.Open(e.dev, region.Config{Dir: e.dir})
	if err != nil {
		t.Fatal(err)
	}
	e.rt = rt
	heapPtr, _, err := rt.Static("pds.backend.heap", 8)
	if err != nil {
		t.Fatal(err)
	}
	mem := rt.NewMemory()
	if mem.LoadU64(heapPtr) == 0 {
		base, err := rt.PMapAt(heapPtr, 64<<20, 0)
		if err != nil {
			t.Fatal(err)
		}
		e.heap, err = pheap.Format(rt, base, 64<<20, pheap.Config{Lanes: 4})
		if err != nil {
			t.Fatal(err)
		}
	} else {
		e.heap, err = pheap.Open(rt, pmem.Addr(mem.LoadU64(heapPtr)))
		if err != nil {
			t.Fatal(err)
		}
	}
	e.tm, err = mtm.Open(rt, "pds", mtm.Config{Heap: e.heap, Slots: 8})
	if err != nil {
		t.Fatal(err)
	}
	e.th, err = e.tm.NewThread()
	if err != nil {
		t.Fatal(err)
	}
	if e.rootMTM, _, err = rt.Static("pds.backend.mtm", 8); err != nil {
		t.Fatal(err)
	}
	if e.rootMOD, _, err = rt.Static("pds.backend.mod", 8); err != nil {
		t.Fatal(err)
	}
}

func (e *benv) restart(t *testing.T, policy scm.CrashPolicy) {
	t.Helper()
	e.tm.Close()
	e.dev.Crash(policy)
	if err := e.rt.Close(); err != nil {
		t.Fatal(err)
	}
	e.open(t)
}

func (e *benv) maps(t *testing.T) (OrderedMap, OrderedMap) {
	t.Helper()
	mtmMap, err := NewOrderedMap(BackendMTM, Env{TM: e.tm, Thread: e.th}, e.rootMTM)
	if err != nil {
		t.Fatal(err)
	}
	modMap, err := NewOrderedMap(BackendMOD, Env{RT: e.rt, Heap: e.heap}, e.rootMOD)
	if err != nil {
		t.Fatal(err)
	}
	return mtmMap, modMap
}

// dumpOrdered reads the full observable state through the interface.
func dumpOrdered(t *testing.T, m OrderedMap) (map[uint64][]byte, int) {
	t.Helper()
	out := make(map[uint64][]byte)
	n := 0
	if err := m.View(func(r mtm.Reader) error {
		m.Scan(r, 0, func(k uint64, v []byte) bool {
			out[k] = append([]byte(nil), v...)
			return true
		})
		n = m.Len(r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out, n
}

func diffStates(t *testing.T, tag string, model map[uint64][]byte, a, b OrderedMap) {
	t.Helper()
	for name, m := range map[string]OrderedMap{"mtm": a, "mod": b} {
		got, n := dumpOrdered(t, m)
		if len(got) != len(model) || n != len(model) {
			t.Fatalf("%s: %s backend has %d keys (Len %d), model %d",
				tag, name, len(got), n, len(model))
		}
		for k, v := range model {
			if !bytes.Equal(got[k], v) {
				t.Fatalf("%s: %s backend key %d = %q, model %q", tag, name, k, got[k], v)
			}
		}
	}
}

// TestBackendDifferential drives one randomized operation sequence
// through both backends and a volatile model, asserting identical
// observable state after every operation and again after crash and
// recovery.
func TestBackendDifferential(t *testing.T) {
	e := newBEnv(t)
	mtmM, modM := e.maps(t)
	model := map[uint64][]byte{}
	rng := rand.New(rand.NewSource(7))

	const ops = 300
	applyBoth := func(i int, key uint64, put bool, val []byte) {
		var errMTM, errMOD error
		if put {
			errMTM = mtmM.Do(func(tx *mtm.Tx) error { return mtmM.Put(tx, key, val) })
			errMOD = modM.Do(func(tx *mtm.Tx) error { return modM.Put(tx, key, val) })
			model[key] = val
		} else {
			errMTM = mtmM.Do(func(tx *mtm.Tx) error { return mtmM.Delete(tx, key) })
			errMOD = modM.Do(func(tx *mtm.Tx) error { return modM.Delete(tx, key) })
			if _, ok := model[key]; ok {
				if errMTM != nil || errMOD != nil {
					t.Fatalf("op %d: delete of live key %d: mtm=%v mod=%v", i, key, errMTM, errMOD)
				}
			} else if errMTM != ErrNotFound || errMOD != ErrNotFound {
				t.Fatalf("op %d: delete of absent key %d: mtm=%v mod=%v", i, key, errMTM, errMOD)
			}
			delete(model, key)
			return
		}
		if errMTM != nil || errMOD != nil {
			t.Fatalf("op %d: put %d: mtm=%v mod=%v", i, key, errMTM, errMOD)
		}
	}

	for i := 0; i < ops; i++ {
		key := uint64(rng.Intn(48))
		switch rng.Intn(4) {
		case 0:
			applyBoth(i, key, false, nil)
		default:
			n := rng.Intn(200)
			if rng.Intn(20) == 0 {
				n = 4096 + rng.Intn(4096) // MOD indirect-value path
			}
			val := make([]byte, n)
			rng.Read(val)
			applyBoth(i, key, true, val)
		}
		// Point reads after every op; full dumps periodically (the dump
		// is O(n) and the point reads already pin the touched key).
		want, live := model[key]
		for name, m := range map[string]OrderedMap{"mtm": mtmM, "mod": modM} {
			if err := m.View(func(r mtm.Reader) error {
				got, err := m.Get(r, key)
				if live && (err != nil || !bytes.Equal(got, want)) {
					return fmt.Errorf("get %d = %q, %v, want %q", key, got, err, want)
				}
				if !live && err != ErrNotFound {
					return fmt.Errorf("get deleted %d = %v", key, err)
				}
				return nil
			}); err != nil {
				t.Fatalf("op %d: %s: %v", i, name, err)
			}
		}
		if i%25 == 24 {
			diffStates(t, fmt.Sprintf("op %d", i), model, mtmM, modM)
		}
	}
	diffStates(t, "final", model, mtmM, modM)

	// Crash and recover. MOD durability is buffered (the last root swap
	// may still be in the write-combining buffer), so the differential
	// contract across a crash needs the explicit durability point.
	modM.(interface{ Mod() *mod.Map }).Mod().Sync()
	for _, policy := range []scm.CrashPolicy{scm.DropAll{}, scm.KeepAll{}} {
		e.restart(t, policy)
		mtmM, modM = e.maps(t)
		diffStates(t, fmt.Sprintf("after crash (%T)", policy), model, mtmM, modM)
	}
}

// TestModViewersVsWriterRace is the race-enabled soak: snapshot readers
// traverse a MOD map through the interface View while a writer commits,
// a crash+recovery interrupts the test midway, and the soak resumes on
// the recovered map. Run with -race.
func TestModViewersVsWriterRace(t *testing.T) {
	e := newBEnv(t)
	_, modM := e.maps(t)

	soak := func(m OrderedMap, seed int64, d time.Duration) {
		stop := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() { // writer
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				key := uint64(rng.Intn(64))
				if rng.Intn(3) == 0 {
					err := m.Delete(nil, key)
					if err != nil && err != ErrNotFound {
						t.Errorf("writer delete: %v", err)
						return
					}
				} else if err := m.Put(nil, key, []byte(fmt.Sprintf("v%d", i))); err != nil {
					t.Errorf("writer put: %v", err)
					return
				}
			}
		}()
		for r := 0; r < 4; r++ {
			wg.Add(1)
			go func(r int) { // snapshot readers
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					if err := m.View(func(rd mtm.Reader) error {
						// Within one snapshot, Len and Scan must agree
						// no matter what the writer is doing.
						n := 0
						m.Scan(rd, 0, func(k uint64, v []byte) bool {
							n++
							return true
						})
						if l := m.Len(rd); l != n {
							return fmt.Errorf("snapshot scan saw %d keys, Len says %d", n, l)
						}
						return nil
					}); err != nil {
						t.Errorf("reader %d: %v", r, err)
						return
					}
				}
			}(r)
		}
		time.Sleep(d)
		close(stop)
		wg.Wait()
	}

	d := 300 * time.Millisecond
	if testing.Short() {
		d = 50 * time.Millisecond
	}
	soak(modM, 1, d)

	// Mid-test crash: quiesce, force durability, power-cycle, resume the
	// soak on the recovered structure.
	mm := modM.(interface{ Mod() *mod.Map }).Mod()
	mm.Sync()
	before, _ := dumpOrdered(t, modM)
	e.restart(t, scm.DropAll{})
	_, modM = e.maps(t)
	after, _ := dumpOrdered(t, modM)
	if len(before) != len(after) {
		t.Fatalf("crash lost synced state: %d keys before, %d after", len(before), len(after))
	}
	for k, v := range before {
		if !bytes.Equal(after[k], v) {
			t.Fatalf("key %d: %q before crash, %q after", k, v, after[k])
		}
	}
	soak(modM, 2, d)
}
