package mod

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/crashpoint"
	"repro/internal/pgc"
	"repro/internal/pheap"
	"repro/internal/pmem"
	"repro/internal/region"
	"repro/internal/scm"
)

// modOp is one step of the deterministic MOD crash workload.
type modOp struct {
	Del bool
	Key uint64
	Len int // value length (Put only)
}

var modOps = []modOp{
	{Key: 1, Len: 10},
	{Key: 2, Len: 100},
	{Key: 3, Len: 5000}, // indirect value: two segments
	{Key: 1, Len: 40},   // replace
	{Del: true, Key: 2},
	{Key: 4, Len: 1},
	{Key: 5, Len: 0}, // empty value
	{Del: true, Key: 3},
	{Key: 6, Len: 200},
}

// modValue derives a deterministic value for (key, len, op index).
func modValue(key uint64, n, i int) []byte {
	out := make([]byte, n)
	for j := range out {
		out[j] = byte(uint64(j)*2654435761 + key*31 + uint64(i))
	}
	return out
}

// modModel returns the expected map contents after the first m ops.
func modModel(m int) map[uint64][]byte {
	state := make(map[uint64][]byte)
	for i := 0; i < m; i++ {
		op := modOps[i]
		if op.Del {
			delete(state, op.Key)
		} else {
			state[op.Key] = modValue(op.Key, op.Len, i)
		}
	}
	return state
}

const modCrashHeapSize = 256 << 10

// modCrashWorkload drives the op sequence through a MOD map on a fresh
// heap. The oracle checks the paper's shadow-update contract: the
// recovered root is the state after exactly j acked ops for some
// plausible j (the final root swap's durability is buffered, so j may
// trail the ack count by one), the structure is never torn, and a
// reclamation sweep both frees every block the crash leaked and reaches
// a fixpoint.
func modCrashWorkload(t *testing.T) crashpoint.Workload {
	return func() (*crashpoint.Run, error) {
		dev, err := scm.Open(scm.Config{Size: 2 << 20, Mode: scm.DelayOff})
		if err != nil {
			return nil, err
		}
		dir := t.TempDir()
		done := 0

		openRegion := func() (*region.Runtime, pmem.Addr, pmem.Addr, error) {
			rt, err := region.Open(dev, region.Config{Dir: dir, StaticSize: 64 << 10})
			if err != nil {
				return nil, pmem.Nil, pmem.Nil, err
			}
			heapPtr, _, err := rt.Static("mod.crash.heap", 8)
			if err != nil {
				rt.Close()
				return nil, pmem.Nil, pmem.Nil, err
			}
			root, _, err := rt.Static("mod.crash.map", 8)
			if err != nil {
				rt.Close()
				return nil, pmem.Nil, pmem.Nil, err
			}
			return rt, heapPtr, root, nil
		}

		return &crashpoint.Run{
			Dev: dev,
			Body: func() error {
				rt, heapPtr, root, err := openRegion()
				if err != nil {
					return err
				}
				base, err := rt.PMapAt(heapPtr, modCrashHeapSize, 0)
				if err != nil {
					return err
				}
				h, err := pheap.Format(rt, base, modCrashHeapSize, pheap.Config{Lanes: 2})
				if err != nil {
					return err
				}
				m := NewMap(rt, h, root)
				for i, op := range modOps {
					if op.Del {
						err = m.Delete(op.Key)
					} else {
						err = m.Put(op.Key, modValue(op.Key, op.Len, i))
					}
					if err != nil {
						return err
					}
					done = i + 1
				}
				return nil
			},
			Check: func() error {
				rt, heapPtr, root, err := openRegion()
				if err != nil {
					return fmt.Errorf("region tables not remappable: %w", err)
				}
				defer rt.Close()
				mem := rt.NewMemory()
				base := pmem.Addr(mem.LoadU64(heapPtr))
				if base == pmem.Nil {
					if done > 0 {
						return fmt.Errorf("heap region lost after %d acked ops", done)
					}
					return nil
				}
				h, err := pheap.Open(rt, base)
				if err != nil {
					if done > 0 {
						return fmt.Errorf("heap unopenable after %d acked ops: %w", done, err)
					}
					return nil
				}
				if err := h.Check(); err != nil {
					return err
				}
				m := NewMap(rt, h, root)

				// The root must never be torn.
				if err := m.CheckInvariants(); err != nil {
					return fmt.Errorf("torn structure after %d acked ops: %v", done, err)
				}

				// Contents must equal the model after exactly j ops. An
				// acked op's root swap is only durable once a later fence
				// drains it, so j is done-1 or done; a crash inside op
				// done+1 cannot publish it (the swap follows the fence).
				read := make(map[uint64][]byte)
				m.Scan(0, func(k uint64, v []byte) bool {
					read[k] = v
					return true
				})
				matched := -1
				for _, j := range []int{done - 1, done} {
					if j < 0 || j > len(modOps) {
						continue
					}
					if modelEqual(read, modModel(j)) {
						matched = j
						break
					}
				}
				if matched < 0 {
					return fmt.Errorf("recovered state (%d keys) matches neither %d nor %d applied ops", len(read), done-1, done)
				}

				// Reclamation: a sweep with no pinned snapshots must free
				// every block the crash stranded (shadow blocks whose root
				// swap never landed, nodes superseded by later commits)
				// and leave exactly the reachable structure. A second
				// sweep freeing nothing proves the first was complete.
				gc, err := pgc.New(rt, h)
				if err != nil {
					return err
				}
				if _, err := gc.Collect(); err != nil {
					return err
				}
				if err := m.CheckInvariants(); err != nil {
					return fmt.Errorf("sweep damaged live structure: %v", err)
				}
				after := make(map[uint64][]byte)
				m.Scan(0, func(k uint64, v []byte) bool {
					after[k] = v
					return true
				})
				if !modelEqual(after, modModel(matched)) {
					return fmt.Errorf("sweep changed observable contents")
				}
				rep2, err := gc.Collect()
				if err != nil {
					return err
				}
				if rep2.Freed != 0 {
					return fmt.Errorf("second sweep freed %d blocks; first was incomplete", rep2.Freed)
				}
				return nil
			},
		}, nil
	}
}

func modelEqual(a, b map[uint64][]byte) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if !bytes.Equal(v, b[k]) {
			return false
		}
	}
	return true
}

// TestCrashPointsMOD explores the crash points of the MOD map workload:
// at every persistence event the recovered structure must be the state
// after a whole number of operations — old root or new root, never torn
// — and the deferred-reclamation sweep must reclaim all leaked shadow
// blocks. Nightly CI sets CRASHPOINT_EXHAUSTIVE=1 for the full sweep.
func TestCrashPointsMOD(t *testing.T) {
	rep, err := crashpoint.Explore(modCrashWorkload(t), crashpoint.Options{
		Schedule: crashpoint.TestSchedule(testing.Short(), 48),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		for _, f := range rep.Failures {
			t.Errorf("%v", f)
		}
		t.Fatalf("MOD recovery oracle failed at %d of %d crash points (%s)",
			len(rep.Failures), rep.Points, rep)
	}
	t.Logf("mod: %s", rep)
}
