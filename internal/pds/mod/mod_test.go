package mod

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/pheap"
	"repro/internal/pmem"
	"repro/internal/region"
	"repro/internal/scm"
)

type env struct {
	dev  *scm.Device
	rt   *region.Runtime
	heap *pheap.Heap
	root pmem.Addr // root cell for a map
	qr   pmem.Addr // root cell for a queue
}

const testHeapSize = 1 << 20

func newEnv(t *testing.T) *env {
	t.Helper()
	dev, err := scm.Open(scm.Config{Size: testHeapSize + 4<<20, Mode: scm.DelayOff})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := region.Open(dev, region.Config{Dir: t.TempDir(), StaticSize: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	base, err := rt.PMap(testHeapSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	h, err := pheap.Format(rt, base, testHeapSize, pheap.Config{})
	if err != nil {
		t.Fatal(err)
	}
	root, _, err := rt.Static("mod.test.map", 8)
	if err != nil {
		t.Fatal(err)
	}
	qr, _, err := rt.Static("mod.test.queue", 8)
	if err != nil {
		t.Fatal(err)
	}
	return &env{dev: dev, rt: rt, heap: h, root: root, qr: qr}
}

func val(i uint64) []byte { return []byte(fmt.Sprintf("value-%d", i)) }

func TestMapBasic(t *testing.T) {
	e := newEnv(t)
	m := NewMap(e.rt, e.heap, e.root)

	if _, err := m.Get(1); err != ErrNotFound {
		t.Fatalf("empty map Get: %v", err)
	}
	if err := m.Delete(1); err != ErrNotFound {
		t.Fatalf("empty map Delete: %v", err)
	}
	for i := uint64(0); i < 100; i++ {
		if err := m.Put(i*7, val(i)); err != nil {
			t.Fatal(err)
		}
	}
	if m.Len() != 100 {
		t.Fatalf("Len = %d, want 100", m.Len())
	}
	for i := uint64(0); i < 100; i++ {
		got, err := m.Get(i * 7)
		if err != nil || !bytes.Equal(got, val(i)) {
			t.Fatalf("Get(%d) = %q, %v", i*7, got, err)
		}
	}
	// Replace does not change the count.
	if err := m.Put(7, []byte("replaced")); err != nil {
		t.Fatal(err)
	}
	if m.Len() != 100 {
		t.Fatalf("Len after replace = %d", m.Len())
	}
	if got, _ := m.Get(7); string(got) != "replaced" {
		t.Fatalf("Get(7) = %q", got)
	}
	// Delete half.
	for i := uint64(0); i < 100; i += 2 {
		if err := m.Delete(i * 7); err != nil {
			t.Fatal(err)
		}
	}
	if m.Len() != 50 {
		t.Fatalf("Len after deletes = %d", m.Len())
	}
	if m.Contains(0) || !m.Contains(7) {
		t.Fatal("Contains wrong after deletes")
	}
	// Scan sees the odd keys in order.
	var keys []uint64
	m.Scan(0, func(k uint64, v []byte) bool {
		keys = append(keys, k)
		return true
	})
	if len(keys) != 50 {
		t.Fatalf("scan saw %d keys", len(keys))
	}
	for i := 1; i < len(keys); i++ {
		if keys[i] <= keys[i-1] {
			t.Fatalf("scan out of order: %v", keys[:i+1])
		}
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMapLargeValues(t *testing.T) {
	e := newEnv(t)
	m := NewMap(e.rt, e.heap, e.root)
	big := make([]byte, 3*4096+17) // indirect: four segments
	for i := range big {
		big[i] = byte(i * 31)
	}
	if err := m.Put(42, big); err != nil {
		t.Fatal(err)
	}
	got, err := m.Get(42)
	if err != nil || !bytes.Equal(got, big) {
		t.Fatalf("large value roundtrip failed: %v (len %d)", err, len(got))
	}
	if err := m.Put(43, nil); err != nil {
		t.Fatal(err)
	}
	if got, err := m.Get(43); err != nil || len(got) != 0 {
		t.Fatalf("empty value roundtrip: %q, %v", got, err)
	}
	if err := m.Put(44, make([]byte, MaxValue+1)); err == nil {
		t.Fatal("oversized value accepted")
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestMapSingleFencePerOp is the headline property: every mutation costs
// exactly one device fence.
func TestMapSingleFencePerOp(t *testing.T) {
	e := newEnv(t)
	m := NewMap(e.rt, e.heap, e.root)
	// Warm up so superblock adoption noise is out of the way.
	for i := uint64(0); i < 16; i++ {
		if err := m.Put(i, val(i)); err != nil {
			t.Fatal(err)
		}
	}
	before := e.dev.Snapshot().Fences
	const ops = 200
	for i := uint64(0); i < ops; i++ {
		if err := m.Put(1000+i, val(i)); err != nil {
			t.Fatal(err)
		}
	}
	got := e.dev.Snapshot().Fences - before
	if got != ops {
		t.Fatalf("%d fences for %d mutations, want exactly %d", got, ops, ops)
	}
}

func TestSnapshotIsolationAndReclamation(t *testing.T) {
	e := newEnv(t)
	m := NewMap(e.rt, e.heap, e.root)
	for i := uint64(0); i < 20; i++ {
		if err := m.Put(i, val(i)); err != nil {
			t.Fatal(err)
		}
	}
	snap := m.Snapshot()
	// Mutate past the snapshot.
	for i := uint64(0); i < 20; i++ {
		if err := m.Put(i, []byte("new")); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Delete(0); err != nil {
		t.Fatal(err)
	}
	// The snapshot still sees the old world.
	if snap.Len() != 20 {
		t.Fatalf("snap.Len = %d", snap.Len())
	}
	for i := uint64(0); i < 20; i++ {
		got, err := snap.Get(i)
		if err != nil || !bytes.Equal(got, val(i)) {
			t.Fatalf("snap.Get(%d) = %q, %v", i, got, err)
		}
	}
	if len(m.PinnedRoots()) != 1 {
		t.Fatalf("pinned roots: %v", m.PinnedRoots())
	}
	snap.Release()
	if len(m.PinnedRoots()) != 0 {
		t.Fatal("pin survived release")
	}
}

func TestQueueBasic(t *testing.T) {
	e := newEnv(t)
	q := NewQueue(e.rt, e.heap, e.qr)
	if _, err := q.Dequeue(); err != ErrQueueEmpty {
		t.Fatalf("empty Dequeue: %v", err)
	}
	if _, err := q.Peek(); err != ErrQueueEmpty {
		t.Fatalf("empty Peek: %v", err)
	}
	// Interleave enqueues and dequeues so the back-list reversal runs.
	next, want := uint64(0), uint64(0)
	push := func(n int) {
		for i := 0; i < n; i++ {
			if err := q.Enqueue(val(next)); err != nil {
				t.Fatal(err)
			}
			next++
		}
	}
	pop := func(n int) {
		for i := 0; i < n; i++ {
			if p, err := q.Peek(); err != nil || !bytes.Equal(p, val(want)) {
				t.Fatalf("Peek = %q, %v, want %q", p, err, val(want))
			}
			got, err := q.Dequeue()
			if err != nil || !bytes.Equal(got, val(want)) {
				t.Fatalf("Dequeue = %q, %v, want %q", got, err, val(want))
			}
			want++
		}
	}
	push(5)
	pop(2)
	push(7)
	if err := q.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	pop(10)
	if q.Len() != 0 {
		t.Fatalf("Len = %d", q.Len())
	}
	if _, err := q.Dequeue(); err != ErrQueueEmpty {
		t.Fatalf("drained Dequeue: %v", err)
	}
	if err := q.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestMapCanonicalShape: the treap's shape depends only on the key set,
// so two maps built in different insertion orders expose identical
// persistent layouts per node count — verified here just through equal
// iteration and invariants, which is what the differential tests rely on.
func TestMapCanonicalShape(t *testing.T) {
	e := newEnv(t)
	a := NewMap(e.rt, e.heap, e.root)
	b := NewMap(e.rt, e.heap, e.qr)
	for i := uint64(0); i < 64; i++ {
		if err := a.Put(i, val(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := int64(63); i >= 0; i-- {
		if err := b.Put(uint64(i), val(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	var sa, sb []string
	a.Scan(0, func(k uint64, v []byte) bool {
		sa = append(sa, fmt.Sprintf("%d=%s", k, v))
		return true
	})
	b.Scan(0, func(k uint64, v []byte) bool {
		sb = append(sb, fmt.Sprintf("%d=%s", k, v))
		return true
	})
	if len(sa) != len(sb) {
		t.Fatalf("lens %d vs %d", len(sa), len(sb))
	}
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("diverged at %d: %s vs %s", i, sa[i], sb[i])
		}
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := b.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
