package mod

import (
	"fmt"

	"repro/internal/blob"
	"repro/internal/pheap"
	"repro/internal/pmem"
)

// Value blocks. Small values are one shadow block, [8B length][bytes].
// The shadow allocator tops out at pheap.MaxSmall, so larger values use
// an indirect block — [8B length][8B segment addr]... — whose segments
// are full small-class blocks. Value blocks are immutable once published
// (an update writes a new one), which is what lets snapshots share them.

const (
	valueHdr  = 8
	maxInline = pheap.MaxSmall - valueHdr
	segSize   = pheap.MaxSmall
	maxSegs   = (pheap.MaxSmall - valueHdr) / 8

	// MaxValue is the largest storable value (~2 MB): one indirect block
	// full of segment pointers.
	MaxValue = maxSegs * segSize
)

// writeValue allocates and fills shadow block(s) for val, returning the
// value block's address. Cacheable stores only; durability rides the
// commit fence via b.batch.
func (b *base) writeValue(val []byte) (pmem.Addr, error) {
	n := int64(len(val))
	if err := blob.CheckWrite(n, MaxValue); err != nil {
		return pmem.Nil, err
	}
	if n <= maxInline {
		blk, err := b.alloc(valueHdr + n)
		if err != nil {
			return pmem.Nil, err
		}
		b.mem.StoreU64(blk, uint64(n))
		b.mem.Store(blk.Add(valueHdr), val)
		b.batch.Add(blk, valueHdr+n)
		return blk, nil
	}
	nseg := (n + segSize - 1) / segSize
	idx, err := b.alloc(valueHdr + nseg*8)
	if err != nil {
		return pmem.Nil, err
	}
	b.mem.StoreU64(idx, uint64(n))
	for i := int64(0); i < nseg; i++ {
		chunk := val[i*segSize : min64(n, (i+1)*segSize)]
		seg, err := b.alloc(int64(len(chunk)))
		if err != nil {
			return pmem.Nil, err
		}
		b.mem.Store(seg, chunk)
		b.batch.Add(seg, int64(len(chunk)))
		b.mem.StoreU64(idx.Add(valueHdr+i*8), uint64(seg))
	}
	b.batch.Add(idx, valueHdr+nseg*8)
	return idx, nil
}

// readValue decodes a value block through mem (the writer's context or a
// snapshot's).
func readValue(mem interface {
	LoadU64(pmem.Addr) uint64
	Load([]byte, pmem.Addr)
}, blk pmem.Addr) ([]byte, error) {
	n := int64(mem.LoadU64(blk))
	if err := blob.CheckRead(n, MaxValue); err != nil {
		return nil, fmt.Errorf("mod: value at %v: %w", blk, err)
	}
	out := make([]byte, n)
	if n <= maxInline {
		mem.Load(out, blk.Add(valueHdr))
		return out, nil
	}
	for i := int64(0); i*segSize < n; i++ {
		seg := pmem.Addr(mem.LoadU64(blk.Add(valueHdr + i*8)))
		mem.Load(out[i*segSize:min64(n, (i+1)*segSize)], seg)
	}
	return out, nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
