// Package mod implements MOD-style minimally-ordered durable structures
// (Haria, Hill, Swift — "MOD: Minimally Ordered Durable Datastructures
// for Persistent Memory") as an alternative backend for the pds
// structures: a copy-on-write map and queue over the persistent heap
// where every mutation clones the path from the root into fresh shadow
// blocks, flushes the new blocks, and commits with a single root-pointer
// swap plus ONE ordering fence — no RAWL record, no mtm log slot, no
// thread lease.
//
// # Commit protocol
//
// A mutation builds its entire result out of line: every new node comes
// from pheap's out-of-band shadow allocator (PMallocShadow — no redo
// record, no fence, no destination pointer), is filled with plain
// cacheable stores, and is recorded in a pheap.FlushBatch. Commit is
// then:
//
//	batch.Flush(mem)            // write back every shadow line
//	mem.Fence()                 // the single ordering fence
//	mem.WTStoreU64(root, new)   // atomic 8-byte root swap
//
// The fence orders all shadow content (nodes, value blocks, allocator
// bitmap bits) before the swap; the swap itself is a single atomic word
// whose durability is deferred — it sits in the structure's
// write-combining buffer until the next operation's fence (or an
// explicit Sync) drains it. A crash therefore recovers to the structure
// as of some operation boundary: the old root or the new one, never a
// torn interior. This is buffered durable linearizability, exactly the
// paper's contract; callers that need a synchronous durability point
// call Sync (one extra fence) and get it.
//
// # Snapshots and reclamation
//
// Published nodes are immutable, so an old root is a free, consistent
// snapshot: Snapshot pins the current root in a registry and reads it
// lock-free while writers keep committing — the same role PR 5's View
// plays for the mtm backend, and a *Snap implements mtm.Reader so the
// shared read-side code paths accept it. Superseded nodes are not freed
// inline (a pinned snapshot may still reach them); a deferred
// reclamation sweep — pgc's conservative mark-sweep with every pinned
// root added as an extra GC root — frees them once nothing can reach
// them, and the same sweep reclaims blocks leaked by a crash between
// shadow allocation and root swap.
package mod

import (
	"sync"

	"repro/internal/pheap"
	"repro/internal/pmem"
	"repro/internal/region"
	"repro/internal/telemetry"
)

var (
	telCommits = telemetry.NewCounter("mod_commits_total",
		"MOD shadow-update mutations committed (one root swap each)")
	telCommitFences = telemetry.NewCounter("mod_commit_fences_total",
		"ordering fences issued by MOD commits (exactly one per mutation)")
	telSyncFences = telemetry.NewCounter("mod_sync_fences_total",
		"extra fences issued by explicit MOD Sync calls")
	telShadowBytes = telemetry.NewCounter("mod_shadow_bytes_total",
		"bytes of shadow blocks flushed by MOD commits")
	telSnapshots = telemetry.NewCounter("mod_snapshots_total",
		"MOD snapshots pinned")
	telReclaimed = telemetry.NewCounter("mod_reclaimed_blocks_total",
		"superseded or leaked MOD blocks freed by reclamation sweeps")
)

// CountReclaimed accounts blocks freed by a reclamation sweep run on a
// MOD structure's behalf (the sweep itself lives in pgc/core).
func CountReclaimed(n int) {
	if n > 0 {
		telReclaimed.Add(uint64(n))
	}
}

// base carries the pieces every MOD structure shares: the root-pointer
// cell, the writer's memory context (whose write-combining buffer is the
// deferred-durability channel for root swaps), the shadow allocator, the
// flush batch, and the snapshot pin registry.
type base struct {
	mu      sync.Mutex // serializes writers; commit order = fence order
	rt      *region.Runtime
	mem     pmem.Memory // writer context — root swaps drain in order
	heap    *pheap.Heap
	rootPtr pmem.Addr
	batch   pheap.FlushBatch

	pinMu sync.Mutex
	pins  map[uint64]pmem.Addr
	next  uint64

	readers sync.Pool // of pmem.Memory, for concurrent snapshot readers
}

func newBase(rt *region.Runtime, heap *pheap.Heap, rootPtr pmem.Addr) base {
	return base{
		rt:      rt,
		mem:     rt.NewMemory(),
		heap:    heap,
		rootPtr: rootPtr,
		pins:    make(map[uint64]pmem.Addr),
	}
}

// commit publishes newRoot with the single-fence protocol. Called with
// b.mu held, after the mutation has filled its shadow blocks and batch.
func (b *base) commit(newRoot pmem.Addr) {
	b.batch.Flush(b.mem)
	b.mem.Fence() // the one ordering point of the whole mutation
	b.mem.WTStoreU64(b.rootPtr, uint64(newRoot))
	telCommits.Inc()
	telCommitFences.Inc()
	telShadowBytes.Add(uint64(b.batch.Bytes()))
}

// Sync makes every committed mutation durable now: one fence drains the
// pending root swap. Use it before an orderly shutdown, before a
// reclamation sweep, or wherever buffered durability is not enough.
func (b *base) Sync() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.mem.Fence()
	telSyncFences.Inc()
}

// alloc is PMallocShadow against the structure's batch.
func (b *base) alloc(size int64) (pmem.Addr, error) {
	return b.heap.PMallocShadow(size, &b.batch)
}

// readerMem borrows a memory context for a snapshot reader.
func (b *base) readerMem() pmem.Memory {
	if m, ok := b.readers.Get().(pmem.Memory); ok {
		return m
	}
	return b.rt.NewMemory()
}

// pinRoot registers root and returns its pin id. Loading the root and
// pinning it are one critical section, so a sweep that snapshots the pin
// table can never miss a root a reader is about to traverse.
func (b *base) pinRoot(mem pmem.Memory) (pmem.Addr, uint64) {
	b.pinMu.Lock()
	root := pmem.Addr(mem.LoadU64(b.rootPtr))
	b.next++
	id := b.next
	if root != pmem.Nil {
		b.pins[id] = root
	}
	b.pinMu.Unlock()
	telSnapshots.Inc()
	return root, id
}

func (b *base) unpin(id uint64) {
	b.pinMu.Lock()
	delete(b.pins, id)
	b.pinMu.Unlock()
}

// PinnedRoots returns the roots of every live snapshot. A reclamation
// sweep passes these to pgc as extra GC roots so pinned history stays
// reachable.
func (b *base) PinnedRoots() []pmem.Addr {
	b.pinMu.Lock()
	defer b.pinMu.Unlock()
	roots := make([]pmem.Addr, 0, len(b.pins))
	for _, r := range b.pins {
		roots = append(roots, r)
	}
	return roots
}

// Snap is a pinned, immutable view of a MOD structure: the root as of
// Snapshot time. It implements mtm.Reader (raw loads — published MOD
// nodes are immutable, so no validation is needed), letting shared
// read-side code accept either a transactional reader or a MOD snapshot.
// Release it when done so reclamation can free superseded nodes.
type Snap struct {
	b    *base
	mem  pmem.Memory
	root pmem.Addr // root block at pin time, or Nil for an empty structure
	id   uint64
}

func (b *base) snapshot() *Snap {
	mem := b.readerMem()
	root, id := b.pinRoot(mem)
	return &Snap{b: b, mem: mem, root: root, id: id}
}

// LoadU64 reads the word at a (mtm.Reader).
func (s *Snap) LoadU64(a pmem.Addr) uint64 { return s.mem.LoadU64(a) }

// Load reads len(buf) bytes at a (mtm.Reader).
func (s *Snap) Load(buf []byte, a pmem.Addr) { s.mem.Load(buf, a) }

// Release unpins the snapshot. The Snap must not be used afterwards.
func (s *Snap) Release() {
	s.b.unpin(s.id)
	s.b.readers.Put(s.mem)
	s.mem = nil
}

// hash64 is the SplitMix64 finalizer: a bijection on 64-bit words, used
// as the treap priority so distinct keys never tie and equal key sets
// always shape identical treaps.
func hash64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}
