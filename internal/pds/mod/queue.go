package mod

import (
	"errors"

	"repro/internal/pheap"
	"repro/internal/pmem"
	"repro/internal/region"
)

// Queue is a shadow-updated persistent FIFO queue: the classic
// two-list (front/back) functional queue, committed with the same
// single-fence root swap as the Map. Enqueue conses onto the back list;
// dequeue pops the front list, reversing the back list into a fresh
// front — still one commit — when the front runs dry.
//
// Persistent layout:
//
//	root block (24B): [0]=length [8]=front list [16]=back list
//	cell (16B):       [0]=value block [8]=next cell
//
// Cells and root blocks are immutable once published; a dequeue's
// reversal clones cells but shares the (immutable) value blocks.
type Queue struct {
	base
}

// ErrQueueEmpty reports a Dequeue or Peek of an empty queue.
var ErrQueueEmpty = errors.New("mod: queue is empty")

const (
	qrLenOff   = 0
	qrFrontOff = 8
	qrBackOff  = 16
	qrSize     = 24

	cValOff  = 0
	cNextOff = 8
	cSize    = 16
)

// NewQueue wraps the queue rooted at the word rootPtr; a zero word is an
// empty queue.
func NewQueue(rt *region.Runtime, heap *pheap.Heap, rootPtr pmem.Addr) *Queue {
	return &Queue{base: newBase(rt, heap, rootPtr)}
}

func (q *Queue) loadRoot() (length uint64, front, back pmem.Addr) {
	rb := pmem.Addr(q.mem.LoadU64(q.rootPtr))
	if rb == pmem.Nil {
		return 0, pmem.Nil, pmem.Nil
	}
	return q.mem.LoadU64(rb.Add(qrLenOff)),
		pmem.Addr(q.mem.LoadU64(rb.Add(qrFrontOff))),
		pmem.Addr(q.mem.LoadU64(rb.Add(qrBackOff)))
}

func (q *Queue) newCell(vblk, next pmem.Addr) (pmem.Addr, error) {
	c, err := q.alloc(cSize)
	if err != nil {
		return pmem.Nil, err
	}
	q.mem.StoreU64(c.Add(cValOff), uint64(vblk))
	q.mem.StoreU64(c.Add(cNextOff), uint64(next))
	q.batch.Add(c, cSize)
	return c, nil
}

func (q *Queue) newRootBlock(length uint64, front, back pmem.Addr) (pmem.Addr, error) {
	rb, err := q.alloc(qrSize)
	if err != nil {
		return pmem.Nil, err
	}
	q.mem.StoreU64(rb.Add(qrLenOff), length)
	q.mem.StoreU64(rb.Add(qrFrontOff), uint64(front))
	q.mem.StoreU64(rb.Add(qrBackOff), uint64(back))
	q.batch.Add(rb, qrSize)
	return rb, nil
}

func (q *Queue) cellVal(c pmem.Addr) pmem.Addr {
	return pmem.Addr(q.mem.LoadU64(c.Add(cValOff)))
}
func (q *Queue) cellNext(c pmem.Addr) pmem.Addr {
	return pmem.Addr(q.mem.LoadU64(c.Add(cNextOff)))
}

// Enqueue appends val. One fence, one root swap.
func (q *Queue) Enqueue(val []byte) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.batch.Reset()
	vblk, err := q.writeValue(val)
	if err != nil {
		return err
	}
	length, front, back := q.loadRoot()
	cell, err := q.newCell(vblk, back)
	if err != nil {
		return err
	}
	rb, err := q.newRootBlock(length+1, front, cell)
	if err != nil {
		return err
	}
	q.commit(rb)
	return nil
}

// Dequeue removes and returns the oldest value. When the front list is
// empty, the back list is reversed into a fresh front inside the same
// single commit.
func (q *Queue) Dequeue() ([]byte, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.batch.Reset()
	length, front, back := q.loadRoot()
	if length == 0 {
		return nil, ErrQueueEmpty
	}
	if front == pmem.Nil {
		// Reverse the back list (newest-first) into a new front
		// (oldest-first). Cells are cloned; value blocks are shared.
		for c := back; c != pmem.Nil; c = q.cellNext(c) {
			nc, err := q.newCell(q.cellVal(c), front)
			if err != nil {
				return nil, err
			}
			front = nc
		}
		back = pmem.Nil
	}
	val, err := readValue(q.mem, q.cellVal(front))
	if err != nil {
		return nil, err
	}
	rb, err := q.newRootBlock(length-1, q.cellNext(front), back)
	if err != nil {
		return nil, err
	}
	q.commit(rb)
	return val, nil
}

// Peek returns the oldest value without removing it. No commit.
func (q *Queue) Peek() ([]byte, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	length, front, back := q.loadRoot()
	if length == 0 {
		return nil, ErrQueueEmpty
	}
	if front != pmem.Nil {
		return readValue(q.mem, q.cellVal(front))
	}
	// Oldest element is the tail of the back list.
	last := back
	for n := q.cellNext(last); n != pmem.Nil; n = q.cellNext(last) {
		last = n
	}
	return readValue(q.mem, q.cellVal(last))
}

// Len returns the queue length.
func (q *Queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	length, _, _ := q.loadRoot()
	return int(length)
}

// CheckInvariants verifies the committed queue: list lengths sum to the
// root count and every value block decodes.
func (q *Queue) CheckInvariants() error {
	q.mu.Lock()
	defer q.mu.Unlock()
	length, front, back := q.loadRoot()
	n := 0
	for _, head := range []pmem.Addr{front, back} {
		for c := head; c != pmem.Nil; c = q.cellNext(c) {
			if _, err := readValue(q.mem, q.cellVal(c)); err != nil {
				return err
			}
			n++
		}
	}
	if uint64(n) != length {
		return errors.New("mod: queue length does not match cell count")
	}
	return nil
}
