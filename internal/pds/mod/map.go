package mod

import (
	"errors"
	"fmt"

	"repro/internal/pheap"
	"repro/internal/pmem"
	"repro/internal/region"
)

// Map is a shadow-updated persistent map keyed by uint64: a
// copy-on-write treap whose node priority is hash64(key). The priority
// hash is a bijection, so distinct keys never tie and a given key set
// always settles into one canonical shape regardless of insertion order
// — handy for differential testing against the mtm structures.
//
// Every mutation path-copies from the root: O(log n) fresh nodes plus
// one value block, one flush batch, one fence, one root swap. Readers
// either call the Map's own read methods (which briefly take the writer
// lock) or pin a Snapshot and read lock-free.
//
// Persistent layout (all blocks from the shadow allocator):
//
//	root block (16B): [0]=count [8]=top node addr
//	node (32B):       [0]=key [8]=value block [16]=left [24]=right
//	value block:      see value.go
//
// The root pointer cell itself lives outside the heap (a static or a
// caller-provided word); it holds the root block's address and is the
// single word the commit protocol swaps.
type Map struct {
	base
}

// ErrNotFound reports a lookup or delete of an absent key.
var ErrNotFound = errors.New("mod: key not found")

const (
	mrCountOff = 0
	mrTopOff   = 8
	mrSize     = 16

	nKeyOff   = 0
	nValOff   = 8
	nLeftOff  = 16
	nRightOff = 24
	nSize     = 32
)

// NewMap wraps the map rooted at the word rootPtr. A zero word is an
// empty map — there is no separate create step, so recovery is just
// NewMap over the same cell.
func NewMap(rt *region.Runtime, heap *pheap.Heap, rootPtr pmem.Addr) *Map {
	return &Map{base: newBase(rt, heap, rootPtr)}
}

// Snapshot pins the current state for lock-free reading.
func (m *Map) Snapshot() *Snap { return m.snapshot() }

func (m *Map) newNode(key uint64, vblk, left, right pmem.Addr) (pmem.Addr, error) {
	n, err := m.alloc(nSize)
	if err != nil {
		return pmem.Nil, err
	}
	m.mem.StoreU64(n.Add(nKeyOff), key)
	m.mem.StoreU64(n.Add(nValOff), uint64(vblk))
	m.mem.StoreU64(n.Add(nLeftOff), uint64(left))
	m.mem.StoreU64(n.Add(nRightOff), uint64(right))
	m.batch.Add(n, nSize)
	return n, nil
}

func (m *Map) key(n pmem.Addr) uint64 { return m.mem.LoadU64(n.Add(nKeyOff)) }
func (m *Map) vblk(n pmem.Addr) pmem.Addr {
	return pmem.Addr(m.mem.LoadU64(n.Add(nValOff)))
}
func (m *Map) left(n pmem.Addr) pmem.Addr {
	return pmem.Addr(m.mem.LoadU64(n.Add(nLeftOff)))
}
func (m *Map) right(n pmem.Addr) pmem.Addr {
	return pmem.Addr(m.mem.LoadU64(n.Add(nRightOff)))
}

// setLeft / setRight mutate a node. Legal only on nodes allocated in the
// current (uncommitted) mutation — published nodes are immutable.
func (m *Map) setLeft(n, c pmem.Addr)  { m.mem.StoreU64(n.Add(nLeftOff), uint64(c)) }
func (m *Map) setRight(n, c pmem.Addr) { m.mem.StoreU64(n.Add(nRightOff), uint64(c)) }

// loadRoot returns the current root block's count and top node.
func (m *Map) loadRoot() (count uint64, top pmem.Addr) {
	rb := pmem.Addr(m.mem.LoadU64(m.rootPtr))
	if rb == pmem.Nil {
		return 0, pmem.Nil
	}
	return m.mem.LoadU64(rb.Add(mrCountOff)), pmem.Addr(m.mem.LoadU64(rb.Add(mrTopOff)))
}

// Put inserts or replaces key. One commit: one fence, one root swap.
func (m *Map) Put(key uint64, val []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.batch.Reset()
	vblk, err := m.writeValue(val)
	if err != nil {
		return err
	}
	count, top := m.loadRoot()
	newTop, added, err := m.put(top, key, vblk)
	if err != nil {
		return err
	}
	if added {
		count++
	}
	rb, err := m.newRootBlock(count, newTop)
	if err != nil {
		return err
	}
	m.commit(rb)
	return nil
}

func (m *Map) newRootBlock(count uint64, top pmem.Addr) (pmem.Addr, error) {
	rb, err := m.alloc(mrSize)
	if err != nil {
		return pmem.Nil, err
	}
	m.mem.StoreU64(rb.Add(mrCountOff), count)
	m.mem.StoreU64(rb.Add(mrTopOff), uint64(top))
	m.batch.Add(rb, mrSize)
	return rb, nil
}

// put returns the fresh root of the subtree with key→vblk applied. The
// returned node is always freshly allocated this mutation, so rotations
// below may mutate it in place before commit.
func (m *Map) put(n pmem.Addr, key uint64, vblk pmem.Addr) (pmem.Addr, bool, error) {
	if n == pmem.Nil {
		nn, err := m.newNode(key, vblk, pmem.Nil, pmem.Nil)
		return nn, true, err
	}
	nk := m.key(n)
	switch {
	case key == nk:
		nn, err := m.newNode(key, vblk, m.left(n), m.right(n))
		return nn, false, err
	case key < nk:
		l, added, err := m.put(m.left(n), key, vblk)
		if err != nil {
			return pmem.Nil, false, err
		}
		c, err := m.newNode(nk, m.vblk(n), l, m.right(n))
		if err != nil {
			return pmem.Nil, false, err
		}
		// Restore the heap order: if the new left child outranks this
		// node, rotate right. Both nodes are fresh, so in-place edits
		// are safe — nothing published can see them yet.
		if hash64(m.key(l)) > hash64(nk) {
			m.setLeft(c, m.right(l))
			m.setRight(l, c)
			return l, added, nil
		}
		return c, added, nil
	default:
		r, added, err := m.put(m.right(n), key, vblk)
		if err != nil {
			return pmem.Nil, false, err
		}
		c, err := m.newNode(nk, m.vblk(n), m.left(n), r)
		if err != nil {
			return pmem.Nil, false, err
		}
		if hash64(m.key(r)) > hash64(nk) {
			m.setRight(c, m.left(r))
			m.setLeft(r, c)
			return r, added, nil
		}
		return c, added, nil
	}
}

// Delete removes key, or returns ErrNotFound (no commit, no fence).
func (m *Map) Delete(key uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.batch.Reset()
	count, top := m.loadRoot()
	newTop, found, err := m.del(top, key)
	if err != nil {
		return err
	}
	if !found {
		return ErrNotFound
	}
	rb, err := m.newRootBlock(count-1, newTop)
	if err != nil {
		return err
	}
	m.commit(rb)
	return nil
}

// del clones the path to key and splices it out. Unlike put, the
// returned subtree root may be an old shared node (a merge side that
// needed no change) — del never mutates it.
func (m *Map) del(n pmem.Addr, key uint64) (pmem.Addr, bool, error) {
	if n == pmem.Nil {
		return pmem.Nil, false, nil
	}
	nk := m.key(n)
	switch {
	case key == nk:
		merged, err := m.merge(m.left(n), m.right(n))
		return merged, true, err
	case key < nk:
		l, found, err := m.del(m.left(n), key)
		if err != nil || !found {
			return pmem.Nil, false, err
		}
		c, err := m.newNode(nk, m.vblk(n), l, m.right(n))
		return c, true, err
	default:
		r, found, err := m.del(m.right(n), key)
		if err != nil || !found {
			return pmem.Nil, false, err
		}
		c, err := m.newNode(nk, m.vblk(n), m.left(n), r)
		return c, true, err
	}
}

// merge joins two treaps where every key in a precedes every key in b,
// cloning the spine it descends.
func (m *Map) merge(a, b pmem.Addr) (pmem.Addr, error) {
	if a == pmem.Nil {
		return b, nil
	}
	if b == pmem.Nil {
		return a, nil
	}
	if hash64(m.key(a)) > hash64(m.key(b)) {
		r, err := m.merge(m.right(a), b)
		if err != nil {
			return pmem.Nil, err
		}
		return m.newNode(m.key(a), m.vblk(a), m.left(a), r)
	}
	l, err := m.merge(a, m.left(b))
	if err != nil {
		return pmem.Nil, err
	}
	return m.newNode(m.key(b), m.vblk(b), l, m.right(b))
}

// reader is the load-side slice of pmem.Memory shared by the writer
// context and snapshots.
type reader interface {
	LoadU64(pmem.Addr) uint64
	Load([]byte, pmem.Addr)
}

// topOf reads the top node under an arbitrary reader, given the root
// block address.
func topOf(r reader, rb pmem.Addr) pmem.Addr {
	if rb == pmem.Nil {
		return pmem.Nil
	}
	return pmem.Addr(r.LoadU64(rb.Add(mrTopOff)))
}

func findNode(r reader, n pmem.Addr, key uint64) pmem.Addr {
	for n != pmem.Nil {
		nk := r.LoadU64(n.Add(nKeyOff))
		switch {
		case key == nk:
			return n
		case key < nk:
			n = pmem.Addr(r.LoadU64(n.Add(nLeftOff)))
		default:
			n = pmem.Addr(r.LoadU64(n.Add(nRightOff)))
		}
	}
	return pmem.Nil
}

func getValue(r reader, n pmem.Addr, key uint64) ([]byte, error) {
	hit := findNode(r, n, key)
	if hit == pmem.Nil {
		return nil, ErrNotFound
	}
	return readValue(r, pmem.Addr(r.LoadU64(hit.Add(nValOff))))
}

// scanFrom walks keys ≥ from in order. Returns false when fn stopped the
// walk.
func scanFrom(r reader, n pmem.Addr, from uint64, fn func(key uint64, val []byte) bool) bool {
	if n == pmem.Nil {
		return true
	}
	nk := r.LoadU64(n.Add(nKeyOff))
	if nk >= from {
		if !scanFrom(r, pmem.Addr(r.LoadU64(n.Add(nLeftOff))), from, fn) {
			return false
		}
		val, err := readValue(r, pmem.Addr(r.LoadU64(n.Add(nValOff))))
		if err != nil {
			// Scans have no error channel; a corrupt value block under
			// an immutable node is structural damage.
			panic(fmt.Sprintf("mod: scan at key %#x: %v", nk, err))
		}
		if !fn(nk, val) {
			return false
		}
	}
	return scanFrom(r, pmem.Addr(r.LoadU64(n.Add(nRightOff))), from, fn)
}

// Get returns the value for key, briefly taking the writer lock. For
// lock-free reads, use a Snapshot.
func (m *Map) Get(key uint64) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, top := m.loadRoot()
	return getValue(m.mem, top, key)
}

// Contains reports whether key is present.
func (m *Map) Contains(key uint64) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, top := m.loadRoot()
	return findNode(m.mem, top, key) != pmem.Nil
}

// Len returns the number of keys.
func (m *Map) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	count, _ := m.loadRoot()
	return int(count)
}

// Scan visits keys ≥ from in ascending order until fn returns false.
func (m *Map) Scan(from uint64, fn func(key uint64, val []byte) bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, top := m.loadRoot()
	scanFrom(m.mem, top, from, fn)
}

// Get reads from the snapshot.
func (s *Snap) Get(key uint64) ([]byte, error) {
	return getValue(s.mem, topOf(s.mem, s.root), key)
}

// Contains reads from the snapshot.
func (s *Snap) Contains(key uint64) bool {
	return findNode(s.mem, topOf(s.mem, s.root), key) != pmem.Nil
}

// Len reads from the snapshot.
func (s *Snap) Len() int {
	if s.root == pmem.Nil {
		return 0
	}
	return int(s.mem.LoadU64(s.root.Add(mrCountOff)))
}

// Scan reads from the snapshot.
func (s *Snap) Scan(from uint64, fn func(key uint64, val []byte) bool) {
	scanFrom(s.mem, topOf(s.mem, s.root), from, fn)
}

// CheckInvariants verifies the committed treap: BST order on keys, heap
// order on hashed priorities, readable values, and a count that matches
// the root block. Used by the crash oracle and the differential tests.
func (m *Map) CheckInvariants() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	count, top := m.loadRoot()
	n, err := m.checkNode(top, 0, ^uint64(0))
	if err != nil {
		return err
	}
	if uint64(n) != count {
		return fmt.Errorf("mod: root count %d but %d nodes", count, n)
	}
	return nil
}

func (m *Map) checkNode(n pmem.Addr, lo, hi uint64) (int, error) {
	if n == pmem.Nil {
		return 0, nil
	}
	k := m.key(n)
	if k < lo || k > hi {
		return 0, fmt.Errorf("mod: key %#x outside [%#x, %#x]", k, lo, hi)
	}
	if l := m.left(n); l != pmem.Nil && hash64(m.key(l)) > hash64(k) {
		return 0, fmt.Errorf("mod: heap violation at key %#x (left)", k)
	}
	if r := m.right(n); r != pmem.Nil && hash64(m.key(r)) > hash64(k) {
		return 0, fmt.Errorf("mod: heap violation at key %#x (right)", k)
	}
	if _, err := readValue(m.mem, m.vblk(n)); err != nil {
		return 0, err
	}
	var nl, nr int
	var err error
	if k > 0 {
		if nl, err = m.checkNode(m.left(n), lo, k-1); err != nil {
			return 0, err
		}
	} else if m.left(n) != pmem.Nil {
		return 0, fmt.Errorf("mod: left child under key 0")
	}
	if k < ^uint64(0) {
		if nr, err = m.checkNode(m.right(n), k+1, hi); err != nil {
			return 0, err
		}
	} else if m.right(n) != pmem.Nil {
		return 0, fmt.Errorf("mod: right child under key max")
	}
	return nl + nr + 1, nil
}
