package pds

import (
	"errors"
	"fmt"

	"repro/internal/mtm"
	"repro/internal/pmem"
)

// HashTable is a persistent chained hash table with 64-bit keys and
// variable-length values, the structure used by the paper's
// microbenchmark comparison against Berkeley DB (Figures 4, 5, 7). It is a
// port of the simple C hash table the paper cites, with pmalloc'd entry
// nodes and durable transactions around updates.
//
// Layout (one pmalloc'd block):
//
//	0:  magic
//	8:  bucket count
//	16: count cell[0] ... cell[63]   sharded element count
//	528: bucket[0] ... bucket[n-1]   chain heads
//
// The element count is sharded over 64 cells (indexed by bucket) so
// concurrent inserts to different buckets do not conflict on one hot
// counter word; Len sums the cells.
//
// Entry node: next(8) key(8) vlen(8) value bytes (inline).
type HashTable struct {
	base pmem.Addr
}

const (
	htMagic = 0x4d4e485348545431 // "MNHSHTT1"

	htBucketsOff = 8
	htCountOff   = 16
	htCountCells = 64
	htTableOff   = htCountOff + 8*htCountCells

	entNextOff = 0
	entKeyOff  = 8
	entLenOff  = 16
	entValOff  = 24
)

// ErrNotFound reports a lookup or delete of an absent key.
var ErrNotFound = errors.New("pds: key not found")

// CreateHashTable allocates and initializes a hash table with nbuckets
// chains, storing its address through the persistent pointer at rootPtr.
// Initialization runs as a sequence of transactions (bucket zeroing is
// chunked so arbitrarily large tables fit the redo log); the magic word
// committed last is the creation's atomic commit point, so a crash
// mid-create leaves a root that OpenHashTable rejects and the caller
// recreates.
//
// Deprecated: new code should construct structures through the Backend
// selector (NewMap), which creates or reopens as needed.
func CreateHashTable(th *mtm.Thread, rootPtr pmem.Addr, nbuckets int) (*HashTable, error) {
	if nbuckets <= 0 {
		return nil, fmt.Errorf("pds: bad bucket count %d", nbuckets)
	}
	var base pmem.Addr
	err := th.Atomic(func(tx *mtm.Tx) error {
		b, err := tx.PMalloc(htTableOff+int64(nbuckets)*8, rootPtr)
		if err != nil {
			return err
		}
		base = b
		tx.StoreU64(b, 0) // magic unset until initialization completes
		tx.StoreU64(b.Add(htBucketsOff), uint64(nbuckets))
		tx.StoreU64(b.Add(htCountOff), 0)
		return nil
	})
	if err != nil {
		return nil, err
	}
	const chunk = 1024
	for lo := 0; lo < nbuckets; lo += chunk {
		hi := lo + chunk
		if hi > nbuckets {
			hi = nbuckets
		}
		if err := th.Atomic(func(tx *mtm.Tx) error {
			for i := lo; i < hi; i++ {
				tx.StoreU64(base.Add(htTableOff+int64(i)*8), 0)
			}
			return nil
		}); err != nil {
			return nil, err
		}
	}
	if err := th.Atomic(func(tx *mtm.Tx) error {
		tx.StoreU64(base, htMagic)
		return nil
	}); err != nil {
		return nil, err
	}
	return &HashTable{base: base}, nil
}

// OpenHashTable attaches to the hash table whose address is stored at
// rootPtr. Opening only reads, so it works inside a snapshot View as well
// as a writing transaction.
//
// Deprecated: new code should construct structures through the Backend
// selector (NewMap), which creates or reopens as needed.
func OpenHashTable(tx mtm.Reader, rootPtr pmem.Addr) (*HashTable, error) {
	base := pmem.Addr(tx.LoadU64(rootPtr))
	if base == pmem.Nil {
		return nil, errors.New("pds: nil hash table root")
	}
	if tx.LoadU64(base) != htMagic {
		return nil, fmt.Errorf("pds: no hash table at %v", base)
	}
	return &HashTable{base: base}, nil
}

// Base returns the table's block address.
func (h *HashTable) Base() pmem.Addr { return h.base }

func (h *HashTable) bucket(tx mtm.Reader, key uint64) pmem.Addr {
	n := tx.LoadU64(h.base.Add(htBucketsOff))
	return h.base.Add(htTableOff + int64(hash64(key)%n)*8)
}

// countCell returns the count shard for a key's bucket.
func (h *HashTable) countCell(tx mtm.Reader, key uint64) pmem.Addr {
	n := tx.LoadU64(h.base.Add(htBucketsOff))
	return h.base.Add(htCountOff + int64(hash64(key)%n%htCountCells)*8)
}

// Put inserts or replaces the value for key. Replacement frees the old
// entry node and links a fresh one, as the paper's conversion does.
func (h *HashTable) Put(tx *mtm.Tx, key uint64, val []byte) error {
	bucket := h.bucket(tx, key)

	// Unlink an existing entry for the key, if any.
	replaced, err := h.unlink(tx, bucket, key)
	if err != nil {
		return err
	}

	head := tx.LoadU64(bucket)
	node, err := tx.Alloc(entValOff + int64(len(val)))
	if err != nil {
		return err
	}
	tx.StoreU64(node.Add(entNextOff), head)
	tx.StoreU64(node.Add(entKeyOff), key)
	tx.StoreU64(node.Add(entLenOff), uint64(len(val)))
	if len(val) > 0 {
		tx.Store(node.Add(entValOff), val)
	}
	tx.StoreU64(bucket, uint64(node))
	if !replaced {
		cnt := h.countCell(tx, key)
		tx.StoreU64(cnt, tx.LoadU64(cnt)+1)
	}
	return nil
}

// Get returns a copy of the value for key.
func (h *HashTable) Get(tx mtm.Reader, key uint64) ([]byte, error) {
	node := pmem.Addr(tx.LoadU64(h.bucket(tx, key)))
	for node != pmem.Nil {
		if tx.LoadU64(node.Add(entKeyOff)) == key {
			n := int64(tx.LoadU64(node.Add(entLenOff)))
			out := make([]byte, n)
			if n > 0 {
				tx.Load(out, node.Add(entValOff))
			}
			return out, nil
		}
		node = pmem.Addr(tx.LoadU64(node.Add(entNextOff)))
	}
	return nil, ErrNotFound
}

// Delete removes key, freeing its entry node.
func (h *HashTable) Delete(tx *mtm.Tx, key uint64) error {
	removed, err := h.unlink(tx, h.bucket(tx, key), key)
	if err != nil {
		return err
	}
	if !removed {
		return ErrNotFound
	}
	cnt := h.countCell(tx, key)
	tx.StoreU64(cnt, tx.LoadU64(cnt)-1)
	return nil
}

// unlink removes the entry for key from the chain rooted at link,
// scheduling its node for freeing; reports whether an entry was found.
func (h *HashTable) unlink(tx *mtm.Tx, link pmem.Addr, key uint64) (bool, error) {
	for {
		node := pmem.Addr(tx.LoadU64(link))
		if node == pmem.Nil {
			return false, nil
		}
		if tx.LoadU64(node.Add(entKeyOff)) == key {
			next := tx.LoadU64(node.Add(entNextOff))
			tx.StoreU64(link, next)
			return true, tx.FreeBlock(node)
		}
		link = node.Add(entNextOff)
	}
}

// Contains reports whether key is present without copying its value.
func (h *HashTable) Contains(tx mtm.Reader, key uint64) bool {
	node := pmem.Addr(tx.LoadU64(h.bucket(tx, key)))
	for node != pmem.Nil {
		if tx.LoadU64(node.Add(entKeyOff)) == key {
			return true
		}
		node = pmem.Addr(tx.LoadU64(node.Add(entNextOff)))
	}
	return false
}

// Scan visits every entry in bucket order (chain order within a bucket),
// copying each value, until fn returns false. The visit order is
// deterministic for a given table state but otherwise unspecified. Like
// the other read paths it runs against any Reader — a snapshot View or a
// writing transaction.
func (h *HashTable) Scan(tx mtm.Reader, fn func(key uint64, val []byte) bool) {
	nbuckets := int64(tx.LoadU64(h.base.Add(htBucketsOff)))
	for b := int64(0); b < nbuckets; b++ {
		node := pmem.Addr(tx.LoadU64(h.base.Add(htTableOff + b*8)))
		for node != pmem.Nil {
			key := tx.LoadU64(node.Add(entKeyOff))
			n := int64(tx.LoadU64(node.Add(entLenOff)))
			val := make([]byte, n)
			if n > 0 {
				tx.Load(val, node.Add(entValOff))
			}
			if !fn(key, val) {
				return
			}
			node = pmem.Addr(tx.LoadU64(node.Add(entNextOff)))
		}
	}
}

// Len returns the number of entries by summing the count shards.
func (h *HashTable) Len(tx mtm.Reader) int64 {
	var n int64
	for c := 0; c < htCountCells; c++ {
		n += int64(tx.LoadU64(h.base.Add(htCountOff + int64(c)*8)))
	}
	return n
}
