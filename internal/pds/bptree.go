package pds

import (
	"errors"
	"fmt"

	"repro/internal/mtm"
	"repro/internal/pmem"
)

// BPTree is a persistent B+ tree with 64-bit keys and variable-length
// values — the structure behind the Tokyo Cabinet conversion (§6.2):
// "We modified Tokyo Cabinet to allocate its B+ tree in a persistent
// region and perform updates in durable transactions."
//
// Inner nodes route by key; leaves hold pointers to out-of-line value
// blocks and are chained for range scans. Deletion rebalances: an
// underflowing node borrows from an adjacent sibling or merges with one,
// and the root collapses when a level empties, so deleting every key
// releases every node.
//
// Node layout (fits one 512-byte heap block):
//
//	0:   meta = nkeys<<1 | leaf
//	8:   next leaf (leaves only)
//	16:  keys[order]
//	16+8*order: ptrs[order+1] (children for inner, value blocks for leaves)
type BPTree struct {
	rootPtr pmem.Addr
}

// BPOrder is the fan-out: max keys per node.
const BPOrder = 30

const (
	bpMetaOff = 0
	bpNextOff = 8
	bpKeysOff = 16
	bpPtrsOff = bpKeysOff + 8*BPOrder
	bpNodeSz  = bpPtrsOff + 8*(BPOrder+1)
)

// NewBPTree wraps the B+ tree rooted at the persistent pointer rootPtr
// (pmem.Nil there means an empty tree).
//
// Deprecated: new code should construct structures through the Backend
// selector (NewOrderedMap with BackendMTM); this wrapper remains for
// the structure-specific method set (CheckInvariants and friends).
func NewBPTree(rootPtr pmem.Addr) *BPTree { return &BPTree{rootPtr: rootPtr} }

func bpMeta(tx mtm.Reader, n pmem.Addr) (nkeys int, leaf bool) {
	m := tx.LoadU64(n.Add(bpMetaOff))
	return int(m >> 1), m&1 != 0
}

func bpSetMeta(tx *mtm.Tx, n pmem.Addr, nkeys int, leaf bool) {
	m := uint64(nkeys) << 1
	if leaf {
		m |= 1
	}
	tx.StoreU64(n.Add(bpMetaOff), m)
}

func bpKey(tx mtm.Reader, n pmem.Addr, i int) uint64 {
	return tx.LoadU64(n.Add(bpKeysOff + int64(i)*8))
}

func bpSetKey(tx *mtm.Tx, n pmem.Addr, i int, k uint64) {
	tx.StoreU64(n.Add(bpKeysOff+int64(i)*8), k)
}

func bpPtr(tx mtm.Reader, n pmem.Addr, i int) pmem.Addr {
	return pmem.Addr(tx.LoadU64(n.Add(bpPtrsOff + int64(i)*8)))
}

func bpSetPtr(tx *mtm.Tx, n pmem.Addr, i int, p pmem.Addr) {
	tx.StoreU64(n.Add(bpPtrsOff+int64(i)*8), uint64(p))
}

func bpNewNode(tx *mtm.Tx, leaf bool) (pmem.Addr, error) {
	n, err := tx.Alloc(bpNodeSz)
	if err != nil {
		return pmem.Nil, err
	}
	bpSetMeta(tx, n, 0, leaf)
	tx.StoreU64(n.Add(bpNextOff), 0)
	return n, nil
}

// bpSearch returns the index of the first key >= k, in [0, nkeys].
func bpSearch(tx mtm.Reader, n pmem.Addr, nkeys int, k uint64) int {
	lo, hi := 0, nkeys
	for lo < hi {
		mid := (lo + hi) / 2
		if bpKey(tx, n, mid) < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Put inserts or replaces the value for key.
func (t *BPTree) Put(tx *mtm.Tx, key uint64, val []byte) error {
	root := pmem.Addr(tx.LoadU64(t.rootPtr))
	if root == pmem.Nil {
		leaf, err := bpNewNode(tx, true)
		if err != nil {
			return err
		}
		vblk, err := writeValue(tx, val)
		if err != nil {
			return err
		}
		bpSetKey(tx, leaf, 0, key)
		bpSetPtr(tx, leaf, 0, vblk)
		bpSetMeta(tx, leaf, 1, true)
		tx.StoreU64(t.rootPtr, uint64(leaf))
		return nil
	}
	midKey, sib, err := t.insert(tx, root, key, val)
	if err != nil {
		return err
	}
	if sib != pmem.Nil {
		// Root split: grow the tree by one level.
		newRoot, err := bpNewNode(tx, false)
		if err != nil {
			return err
		}
		bpSetKey(tx, newRoot, 0, midKey)
		bpSetPtr(tx, newRoot, 0, root)
		bpSetPtr(tx, newRoot, 1, sib)
		bpSetMeta(tx, newRoot, 1, false)
		tx.StoreU64(t.rootPtr, uint64(newRoot))
	}
	return nil
}

// insert descends to the leaf; on overflow it splits, returning the
// separator key and the new right sibling for the parent to link.
func (t *BPTree) insert(tx *mtm.Tx, n pmem.Addr, key uint64, val []byte) (uint64, pmem.Addr, error) {
	nkeys, leaf := bpMeta(tx, n)
	if leaf {
		i := bpSearch(tx, n, nkeys, key)
		if i < nkeys && bpKey(tx, n, i) == key {
			// Replace the value block in place.
			old := bpPtr(tx, n, i)
			vblk, err := writeValue(tx, val)
			if err != nil {
				return 0, pmem.Nil, err
			}
			bpSetPtr(tx, n, i, vblk)
			if err := tx.FreeBlock(old); err != nil {
				return 0, pmem.Nil, err
			}
			return 0, pmem.Nil, nil
		}
		vblk, err := writeValue(tx, val)
		if err != nil {
			return 0, pmem.Nil, err
		}
		for j := nkeys; j > i; j-- {
			bpSetKey(tx, n, j, bpKey(tx, n, j-1))
			bpSetPtr(tx, n, j, bpPtr(tx, n, j-1))
		}
		bpSetKey(tx, n, i, key)
		bpSetPtr(tx, n, i, vblk)
		nkeys++
		bpSetMeta(tx, n, nkeys, true)
		if nkeys < BPOrder {
			return 0, pmem.Nil, nil
		}
		return t.splitLeaf(tx, n, nkeys)
	}

	i := bpSearch(tx, n, nkeys, key)
	if i < nkeys && bpKey(tx, n, i) == key {
		i++ // equal keys route right of the separator
	}
	child := bpPtr(tx, n, i)
	midKey, sib, err := t.insert(tx, child, key, val)
	if err != nil || sib == pmem.Nil {
		return 0, pmem.Nil, err
	}
	// Link the split child's sibling after slot i.
	for j := nkeys; j > i; j-- {
		bpSetKey(tx, n, j, bpKey(tx, n, j-1))
		bpSetPtr(tx, n, j+1, bpPtr(tx, n, j))
	}
	bpSetKey(tx, n, i, midKey)
	bpSetPtr(tx, n, i+1, sib)
	nkeys++
	bpSetMeta(tx, n, nkeys, false)
	if nkeys < BPOrder {
		return 0, pmem.Nil, nil
	}
	return t.splitInner(tx, n, nkeys)
}

func (t *BPTree) splitLeaf(tx *mtm.Tx, n pmem.Addr, nkeys int) (uint64, pmem.Addr, error) {
	sib, err := bpNewNode(tx, true)
	if err != nil {
		return 0, pmem.Nil, err
	}
	half := nkeys / 2
	for j := half; j < nkeys; j++ {
		bpSetKey(tx, sib, j-half, bpKey(tx, n, j))
		bpSetPtr(tx, sib, j-half, bpPtr(tx, n, j))
	}
	bpSetMeta(tx, sib, nkeys-half, true)
	tx.StoreU64(sib.Add(bpNextOff), tx.LoadU64(n.Add(bpNextOff)))
	tx.StoreU64(n.Add(bpNextOff), uint64(sib))
	bpSetMeta(tx, n, half, true)
	return bpKey(tx, sib, 0), sib, nil
}

func (t *BPTree) splitInner(tx *mtm.Tx, n pmem.Addr, nkeys int) (uint64, pmem.Addr, error) {
	sib, err := bpNewNode(tx, false)
	if err != nil {
		return 0, pmem.Nil, err
	}
	half := nkeys / 2
	midKey := bpKey(tx, n, half)
	for j := half + 1; j < nkeys; j++ {
		bpSetKey(tx, sib, j-half-1, bpKey(tx, n, j))
		bpSetPtr(tx, sib, j-half-1, bpPtr(tx, n, j))
	}
	bpSetPtr(tx, sib, nkeys-half-1, bpPtr(tx, n, nkeys))
	bpSetMeta(tx, sib, nkeys-half-1, false)
	bpSetMeta(tx, n, half, false)
	return midKey, sib, nil
}

// Get returns a copy of the value for key.
func (t *BPTree) Get(tx mtm.Reader, key uint64) ([]byte, error) {
	n := pmem.Addr(tx.LoadU64(t.rootPtr))
	if n == pmem.Nil {
		return nil, ErrNotFound
	}
	for {
		nkeys, leaf := bpMeta(tx, n)
		i := bpSearch(tx, n, nkeys, key)
		if leaf {
			if i < nkeys && bpKey(tx, n, i) == key {
				return readValue(tx, bpPtr(tx, n, i))
			}
			return nil, ErrNotFound
		}
		if i < nkeys && bpKey(tx, n, i) == key {
			i++
		}
		n = bpPtr(tx, n, i)
	}
}

// bpMinKeys is the minimum occupancy of every non-root node after a
// delete; underflowing nodes borrow from or merge with a sibling.
const bpMinKeys = BPOrder/2 - 1

// Delete removes key, freeing its value block, rebalancing underflowing
// nodes (borrow from a sibling, else merge) and shrinking the root when a
// level empties. A tree whose every key is deleted releases every node.
func (t *BPTree) Delete(tx *mtm.Tx, key uint64) error {
	root := pmem.Addr(tx.LoadU64(t.rootPtr))
	if root == pmem.Nil {
		return ErrNotFound
	}
	found, _, err := t.del(tx, root, key)
	if err != nil {
		return err
	}
	if !found {
		return ErrNotFound
	}
	// Shrink the root: an empty inner root is replaced by its only
	// child; an empty leaf root empties the tree.
	nkeys, leaf := bpMeta(tx, root)
	if nkeys == 0 {
		if leaf {
			tx.StoreU64(t.rootPtr, 0)
		} else {
			tx.StoreU64(t.rootPtr, uint64(bpPtr(tx, root, 0)))
		}
		return tx.FreeBlock(root)
	}
	return nil
}

// del removes key from the subtree at n, reporting whether n underflowed.
func (t *BPTree) del(tx *mtm.Tx, n pmem.Addr, key uint64) (found, underflow bool, err error) {
	nkeys, leaf := bpMeta(tx, n)
	i := bpSearch(tx, n, nkeys, key)
	if leaf {
		if i >= nkeys || bpKey(tx, n, i) != key {
			return false, false, nil
		}
		if err := tx.FreeBlock(bpPtr(tx, n, i)); err != nil {
			return false, false, err
		}
		for j := i; j < nkeys-1; j++ {
			bpSetKey(tx, n, j, bpKey(tx, n, j+1))
			bpSetPtr(tx, n, j, bpPtr(tx, n, j+1))
		}
		nkeys--
		bpSetMeta(tx, n, nkeys, true)
		return true, nkeys < bpMinKeys, nil
	}

	ci := i
	if i < nkeys && bpKey(tx, n, i) == key {
		ci++
	}
	found, childUf, err := t.del(tx, bpPtr(tx, n, ci), key)
	if err != nil || !childUf {
		return found, false, err
	}
	if err := t.fixChild(tx, n, ci); err != nil {
		return false, false, err
	}
	nkeys, _ = bpMeta(tx, n)
	return found, nkeys < bpMinKeys, nil
}

// fixChild restores minimum occupancy of child ci of inner node n by
// borrowing from an adjacent sibling or merging with one.
func (t *BPTree) fixChild(tx *mtm.Tx, n pmem.Addr, ci int) error {
	nkeys, _ := bpMeta(tx, n)
	child := bpPtr(tx, n, ci)
	cn, cleaf := bpMeta(tx, child)

	if ci > 0 {
		left := bpPtr(tx, n, ci-1)
		ln, _ := bpMeta(tx, left)
		if ln > bpMinKeys {
			// Borrow the left sibling's last entry.
			for j := cn; j > 0; j-- {
				bpSetKey(tx, child, j, bpKey(tx, child, j-1))
			}
			if cleaf {
				for j := cn; j > 0; j-- {
					bpSetPtr(tx, child, j, bpPtr(tx, child, j-1))
				}
				bpSetKey(tx, child, 0, bpKey(tx, left, ln-1))
				bpSetPtr(tx, child, 0, bpPtr(tx, left, ln-1))
				bpSetKey(tx, n, ci-1, bpKey(tx, child, 0))
			} else {
				for j := cn + 1; j > 0; j-- {
					bpSetPtr(tx, child, j, bpPtr(tx, child, j-1))
				}
				// Rotate through the separator.
				bpSetKey(tx, child, 0, bpKey(tx, n, ci-1))
				bpSetPtr(tx, child, 0, bpPtr(tx, left, ln))
				bpSetKey(tx, n, ci-1, bpKey(tx, left, ln-1))
			}
			bpSetMeta(tx, child, cn+1, cleaf)
			bpSetMeta(tx, left, ln-1, cleaf)
			return nil
		}
	}
	if ci < nkeys {
		right := bpPtr(tx, n, ci+1)
		rn, _ := bpMeta(tx, right)
		if rn > bpMinKeys {
			// Borrow the right sibling's first entry.
			if cleaf {
				bpSetKey(tx, child, cn, bpKey(tx, right, 0))
				bpSetPtr(tx, child, cn, bpPtr(tx, right, 0))
				for j := 0; j < rn-1; j++ {
					bpSetKey(tx, right, j, bpKey(tx, right, j+1))
					bpSetPtr(tx, right, j, bpPtr(tx, right, j+1))
				}
				bpSetKey(tx, n, ci, bpKey(tx, right, 0))
			} else {
				bpSetKey(tx, child, cn, bpKey(tx, n, ci))
				bpSetPtr(tx, child, cn+1, bpPtr(tx, right, 0))
				bpSetKey(tx, n, ci, bpKey(tx, right, 0))
				for j := 0; j < rn-1; j++ {
					bpSetKey(tx, right, j, bpKey(tx, right, j+1))
					bpSetPtr(tx, right, j, bpPtr(tx, right, j+1))
				}
				bpSetPtr(tx, right, rn-1, bpPtr(tx, right, rn))
			}
			bpSetMeta(tx, child, cn+1, cleaf)
			bpSetMeta(tx, right, rn-1, cleaf)
			return nil
		}
	}

	// Merge with a sibling: always right-into-left so the leaf chain
	// only needs the left node's next pointer updated.
	li := ci - 1
	if ci == 0 {
		li = 0 // merge child with its right sibling; child is "left"
	}
	left := bpPtr(tx, n, li)
	right := bpPtr(tx, n, li+1)
	ln, lleaf := bpMeta(tx, left)
	rn, _ := bpMeta(tx, right)
	if lleaf {
		for j := 0; j < rn; j++ {
			bpSetKey(tx, left, ln+j, bpKey(tx, right, j))
			bpSetPtr(tx, left, ln+j, bpPtr(tx, right, j))
		}
		bpSetMeta(tx, left, ln+rn, true)
		tx.StoreU64(left.Add(bpNextOff), tx.LoadU64(right.Add(bpNextOff)))
	} else {
		// The separator key comes down between the runs.
		bpSetKey(tx, left, ln, bpKey(tx, n, li))
		for j := 0; j < rn; j++ {
			bpSetKey(tx, left, ln+1+j, bpKey(tx, right, j))
			bpSetPtr(tx, left, ln+1+j, bpPtr(tx, right, j))
		}
		bpSetPtr(tx, left, ln+1+rn, bpPtr(tx, right, rn))
		bpSetMeta(tx, left, ln+1+rn, false)
	}
	// Remove separator li and child pointer li+1 from n.
	for j := li; j < nkeys-1; j++ {
		bpSetKey(tx, n, j, bpKey(tx, n, j+1))
		bpSetPtr(tx, n, j+1, bpPtr(tx, n, j+2))
	}
	bpSetMeta(tx, n, nkeys-1, false)
	return tx.FreeBlock(right)
}

// Contains reports whether key is present without copying its value.
func (t *BPTree) Contains(tx mtm.Reader, key uint64) bool {
	n := pmem.Addr(tx.LoadU64(t.rootPtr))
	if n == pmem.Nil {
		return false
	}
	for {
		nkeys, leaf := bpMeta(tx, n)
		i := bpSearch(tx, n, nkeys, key)
		if leaf {
			return i < nkeys && bpKey(tx, n, i) == key
		}
		if i < nkeys && bpKey(tx, n, i) == key {
			i++
		}
		n = bpPtr(tx, n, i)
	}
}

// Scan calls fn for every key >= from in ascending order until fn returns
// false, following the leaf chain.
func (t *BPTree) Scan(tx mtm.Reader, from uint64, fn func(key uint64, val []byte) bool) {
	n := pmem.Addr(tx.LoadU64(t.rootPtr))
	if n == pmem.Nil {
		return
	}
	for {
		nkeys, leaf := bpMeta(tx, n)
		if leaf {
			break
		}
		i := bpSearch(tx, n, nkeys, from)
		if i < nkeys && bpKey(tx, n, i) == from {
			i++
		}
		n = bpPtr(tx, n, i)
	}
	for n != pmem.Nil {
		nkeys, _ := bpMeta(tx, n)
		for i := bpSearch(tx, n, nkeys, from); i < nkeys; i++ {
			val, err := readValue(tx, bpPtr(tx, n, i))
			if err != nil {
				// A scan has no error channel; a corrupt length prefix here
				// is structural damage, same class as a torn node.
				panic(fmt.Sprintf("pds: bptree scan at key %#x: %v", bpKey(tx, n, i), err))
			}
			if !fn(bpKey(tx, n, i), val) {
				return
			}
		}
		n = pmem.Addr(tx.LoadU64(n.Add(bpNextOff)))
	}
}

// CheckInvariants verifies key ordering within and across nodes and that
// inner separators route correctly. Returns an error describing the first
// violation (used by property tests).
func (t *BPTree) CheckInvariants(tx mtm.Reader) error {
	root := pmem.Addr(tx.LoadU64(t.rootPtr))
	if root == pmem.Nil {
		return nil
	}
	var walk func(n pmem.Addr, lo, hi uint64, hasLo, hasHi bool, isRoot bool) error
	walk = func(n pmem.Addr, lo, hi uint64, hasLo, hasHi bool, isRoot bool) error {
		nkeys, leaf := bpMeta(tx, n)
		if nkeys > BPOrder {
			return fmt.Errorf("pds: node %v has %d keys", n, nkeys)
		}
		if !isRoot && nkeys < bpMinKeys {
			return fmt.Errorf("pds: node %v underflow (%d < %d keys)", n, nkeys, bpMinKeys)
		}
		var prev uint64
		for i := 0; i < nkeys; i++ {
			k := bpKey(tx, n, i)
			if i > 0 && k <= prev {
				return fmt.Errorf("pds: node %v keys out of order", n)
			}
			if hasLo && k < lo {
				return fmt.Errorf("pds: node %v key %d below bound", n, k)
			}
			if hasHi && k >= hi {
				return fmt.Errorf("pds: node %v key %d above bound", n, k)
			}
			prev = k
		}
		if leaf {
			return nil
		}
		for i := 0; i <= nkeys; i++ {
			clo, chi := lo, hi
			cHasLo, cHasHi := hasLo, hasHi
			if i > 0 {
				clo, cHasLo = bpKey(tx, n, i-1), true
			}
			if i < nkeys {
				chi, cHasHi = bpKey(tx, n, i), true
			}
			if err := walk(bpPtr(tx, n, i), clo, chi, cHasLo, cHasHi, false); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(root, 0, 0, false, false, true)
}

var errBPStop = errors.New("stop")

// Len counts entries via a full scan (for tests).
func (t *BPTree) Len(tx mtm.Reader) int {
	n := 0
	t.Scan(tx, 0, func(uint64, []byte) bool { n++; return true })
	return n
}
