package pds

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/mtm"
	"repro/internal/pgc"
	"repro/internal/pheap"
	"repro/internal/pmem"
	"repro/internal/region"
	"repro/internal/scm"
)

type env struct {
	dev  *scm.Device
	rt   *region.Runtime
	dir  string
	tm   *mtm.TM
	th   *mtm.Thread
	root pmem.Addr // persistent root pointer slot
}

func newEnv(t *testing.T) *env {
	t.Helper()
	dev, err := scm.Open(scm.Config{Size: 128 << 20, Mode: scm.DelayOff})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	e := &env{dev: dev, dir: dir}
	e.open(t)
	return e
}

func (e *env) open(t *testing.T) {
	t.Helper()
	rt, err := region.Open(e.dev, region.Config{Dir: e.dir})
	if err != nil {
		t.Fatal(err)
	}
	e.rt = rt
	heapPtr, created, err := rt.Static("pds.heap", 8)
	if err != nil {
		t.Fatal(err)
	}
	mem := rt.NewMemory()
	var heap *pheap.Heap
	if created || mem.LoadU64(heapPtr) == 0 {
		base, err := rt.PMapAt(heapPtr, 64<<20, 0)
		if err != nil {
			t.Fatal(err)
		}
		heap, err = pheap.Format(rt, base, 64<<20, pheap.Config{Lanes: 4})
		if err != nil {
			t.Fatal(err)
		}
	} else {
		heap, err = pheap.Open(rt, pmem.Addr(mem.LoadU64(heapPtr)))
		if err != nil {
			t.Fatal(err)
		}
	}
	tm, err := mtm.Open(rt, "pds", mtm.Config{Heap: heap, Slots: 8})
	if err != nil {
		t.Fatal(err)
	}
	e.tm = tm
	th, err := tm.NewThread()
	if err != nil {
		t.Fatal(err)
	}
	e.th = th
	root, _, err := rt.Static("pds.root", 8)
	if err != nil {
		t.Fatal(err)
	}
	e.root = root
}

// restart crashes the device and reopens everything.
func (e *env) restart(t *testing.T, policy scm.CrashPolicy) {
	t.Helper()
	e.tm.Close()
	e.dev.Crash(policy)
	if err := e.rt.Close(); err != nil {
		t.Fatal(err)
	}
	e.open(t)
}

func (e *env) atomic(t *testing.T, fn func(tx *mtm.Tx) error) {
	t.Helper()
	if err := e.th.Atomic(fn); err != nil {
		t.Fatal(err)
	}
}

// ---------- HashTable ----------

func TestHashTablePutGetDelete(t *testing.T) {
	e := newEnv(t)
	ht, err := CreateHashTable(e.th, e.root, 64)
	if err != nil {
		t.Fatal(err)
	}
	e.atomic(t, func(tx *mtm.Tx) error {
		if err := ht.Put(tx, 1, []byte("one")); err != nil {
			return err
		}
		return ht.Put(tx, 2, []byte("two"))
	})
	e.atomic(t, func(tx *mtm.Tx) error {
		v, err := ht.Get(tx, 1)
		if err != nil || string(v) != "one" {
			return fmt.Errorf("get 1 = %q, %v", v, err)
		}
		if ht.Len(tx) != 2 {
			return fmt.Errorf("len = %d", ht.Len(tx))
		}
		return nil
	})
	e.atomic(t, func(tx *mtm.Tx) error { return ht.Delete(tx, 1) })
	e.atomic(t, func(tx *mtm.Tx) error {
		if _, err := ht.Get(tx, 1); err != ErrNotFound {
			return fmt.Errorf("get deleted = %v", err)
		}
		if err := ht.Delete(tx, 1); err != ErrNotFound {
			return fmt.Errorf("double delete = %v", err)
		}
		return nil
	})
}

func TestHashTableReplaceValue(t *testing.T) {
	e := newEnv(t)
	ht, err := CreateHashTable(e.th, e.root, 16)
	if err != nil {
		t.Fatal(err)
	}
	e.atomic(t, func(tx *mtm.Tx) error { return ht.Put(tx, 7, []byte("short")) })
	e.atomic(t, func(tx *mtm.Tx) error { return ht.Put(tx, 7, bytes.Repeat([]byte("x"), 300)) })
	e.atomic(t, func(tx *mtm.Tx) error {
		v, err := ht.Get(tx, 7)
		if err != nil || len(v) != 300 {
			return fmt.Errorf("replaced value: %d bytes, %v", len(v), err)
		}
		if ht.Len(tx) != 1 {
			return fmt.Errorf("len after replace = %d", ht.Len(tx))
		}
		return nil
	})
}

func TestHashTableSurvivesCrash(t *testing.T) {
	e := newEnv(t)
	if _, err := CreateHashTable(e.th, e.root, 128); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 200; i++ {
		e.atomic(t, func(tx *mtm.Tx) error {
			ht, err := OpenHashTable(tx, e.root)
			if err != nil {
				return err
			}
			return ht.Put(tx, i, []byte(fmt.Sprintf("value-%d", i)))
		})
	}
	e.restart(t, scm.NewRandomPolicy(3))
	e.atomic(t, func(tx *mtm.Tx) error {
		ht, err := OpenHashTable(tx, e.root)
		if err != nil {
			return err
		}
		if ht.Len(tx) != 200 {
			return fmt.Errorf("len after crash = %d", ht.Len(tx))
		}
		for i := uint64(0); i < 200; i++ {
			v, err := ht.Get(tx, i)
			if err != nil || string(v) != fmt.Sprintf("value-%d", i) {
				return fmt.Errorf("key %d after crash: %q, %v", i, v, err)
			}
		}
		return nil
	})
}

func TestHashTableModelCheck(t *testing.T) {
	e := newEnv(t)
	ht, err := CreateHashTable(e.th, e.root, 32) // small: force collisions
	if err != nil {
		t.Fatal(err)
	}
	model := map[uint64][]byte{}
	rng := rand.New(rand.NewSource(42))
	for step := 0; step < 2000; step++ {
		k := uint64(rng.Intn(100))
		switch rng.Intn(3) {
		case 0, 1:
			v := make([]byte, rng.Intn(64))
			rng.Read(v)
			e.atomic(t, func(tx *mtm.Tx) error { return ht.Put(tx, k, v) })
			model[k] = v
		case 2:
			err := e.th.Atomic(func(tx *mtm.Tx) error { return ht.Delete(tx, k) })
			if _, ok := model[k]; ok {
				if err != nil {
					t.Fatalf("step %d: delete: %v", step, err)
				}
				delete(model, k)
			} else if err != ErrNotFound {
				t.Fatalf("step %d: delete missing: %v", step, err)
			}
		}
	}
	e.atomic(t, func(tx *mtm.Tx) error {
		if int(ht.Len(tx)) != len(model) {
			return fmt.Errorf("len = %d, model %d", ht.Len(tx), len(model))
		}
		for k, v := range model {
			got, err := ht.Get(tx, k)
			if err != nil || !bytes.Equal(got, v) {
				return fmt.Errorf("key %d mismatch", k)
			}
		}
		return nil
	})
}

// ---------- AVL ----------

func TestAVLBasic(t *testing.T) {
	e := newEnv(t)
	tree := NewAVL(e.root)
	keys := []string{"m", "c", "x", "a", "e", "p", "z", "b", "d", "n"}
	for _, k := range keys {
		k := k
		e.atomic(t, func(tx *mtm.Tx) error { return tree.Put(tx, []byte(k), []byte("v:"+k)) })
	}
	e.atomic(t, func(tx *mtm.Tx) error {
		if !tree.CheckInvariants(tx) {
			return fmt.Errorf("AVL invariants violated")
		}
		if tree.Len(tx) != len(keys) {
			return fmt.Errorf("len = %d", tree.Len(tx))
		}
		for _, k := range keys {
			v, err := tree.Get(tx, []byte(k))
			if err != nil || string(v) != "v:"+k {
				return fmt.Errorf("get %q = %q, %v", k, v, err)
			}
		}
		return nil
	})
	// Delete half, verify the rest.
	for _, k := range keys[:5] {
		k := k
		e.atomic(t, func(tx *mtm.Tx) error { return tree.Delete(tx, []byte(k)) })
	}
	e.atomic(t, func(tx *mtm.Tx) error {
		if !tree.CheckInvariants(tx) {
			return fmt.Errorf("AVL invariants violated after delete")
		}
		for _, k := range keys[:5] {
			if _, err := tree.Get(tx, []byte(k)); err != ErrNotFound {
				return fmt.Errorf("deleted %q still present", k)
			}
		}
		for _, k := range keys[5:] {
			if _, err := tree.Get(tx, []byte(k)); err != nil {
				return fmt.Errorf("survivor %q missing", k)
			}
		}
		return nil
	})
}

func TestAVLSequentialInsertStaysBalanced(t *testing.T) {
	e := newEnv(t)
	tree := NewAVL(e.root)
	const n = 1024
	for i := 0; i < n; i++ {
		key := []byte(fmt.Sprintf("%08d", i))
		e.atomic(t, func(tx *mtm.Tx) error { return tree.Put(tx, key, nil) })
	}
	e.atomic(t, func(tx *mtm.Tx) error {
		h := tree.Height(tx)
		if h > 15 { // 1.44*log2(1024) ~ 14.4
			return fmt.Errorf("height %d too large for %d sequential inserts", h, n)
		}
		if !tree.CheckInvariants(tx) {
			return fmt.Errorf("invariants violated")
		}
		return nil
	})
}

func TestAVLModelCheckWithRestarts(t *testing.T) {
	e := newEnv(t)
	tree := NewAVL(e.root)
	model := map[string][]byte{}
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 4; round++ {
		for step := 0; step < 300; step++ {
			k := fmt.Sprintf("key-%03d", rng.Intn(150))
			if rng.Intn(3) == 0 {
				err := e.th.Atomic(func(tx *mtm.Tx) error { return tree.Delete(tx, []byte(k)) })
				if _, ok := model[k]; ok {
					if err != nil {
						t.Fatal(err)
					}
					delete(model, k)
				} else if err != ErrNotFound {
					t.Fatal(err)
				}
			} else {
				v := make([]byte, rng.Intn(100))
				rng.Read(v)
				e.atomic(t, func(tx *mtm.Tx) error { return tree.Put(tx, []byte(k), v) })
				model[k] = v
			}
		}
		e.restart(t, scm.NewRandomPolicy(int64(round)))
		tree = NewAVL(e.root)
		e.atomic(t, func(tx *mtm.Tx) error {
			if !tree.CheckInvariants(tx) {
				return fmt.Errorf("round %d: invariants violated after restart", round)
			}
			if tree.Len(tx) != len(model) {
				return fmt.Errorf("round %d: len %d, model %d", round, tree.Len(tx), len(model))
			}
			for k, v := range model {
				got, err := tree.Get(tx, []byte(k))
				if err != nil || !bytes.Equal(got, v) {
					return fmt.Errorf("round %d: key %q mismatch (%v)", round, k, err)
				}
			}
			return nil
		})
	}
}

// ---------- BPTree ----------

func TestBPTreeInsertSplitGet(t *testing.T) {
	e := newEnv(t)
	tree := NewBPTree(e.root)
	const n = 2000 // forces multi-level splits at order 30
	for i := uint64(0); i < n; i++ {
		e.atomic(t, func(tx *mtm.Tx) error {
			return tree.Put(tx, i*7%n, []byte(fmt.Sprintf("v%d", i*7%n)))
		})
	}
	e.atomic(t, func(tx *mtm.Tx) error {
		if err := tree.CheckInvariants(tx); err != nil {
			return err
		}
		if got := tree.Len(tx); got != n {
			return fmt.Errorf("len = %d", got)
		}
		for i := uint64(0); i < n; i++ {
			v, err := tree.Get(tx, i)
			if err != nil || string(v) != fmt.Sprintf("v%d", i) {
				return fmt.Errorf("get %d = %q, %v", i, v, err)
			}
		}
		return nil
	})
}

func TestBPTreeScanOrder(t *testing.T) {
	e := newEnv(t)
	tree := NewBPTree(e.root)
	rng := rand.New(rand.NewSource(5))
	keys := rng.Perm(500)
	for _, k := range keys {
		k := uint64(k)
		e.atomic(t, func(tx *mtm.Tx) error { return tree.Put(tx, k, nil) })
	}
	e.atomic(t, func(tx *mtm.Tx) error {
		var got []uint64
		tree.Scan(tx, 100, func(k uint64, _ []byte) bool {
			got = append(got, k)
			return true
		})
		if len(got) != 400 {
			return fmt.Errorf("scan returned %d keys", len(got))
		}
		for i, k := range got {
			if k != uint64(100+i) {
				return fmt.Errorf("scan[%d] = %d", i, k)
			}
		}
		return nil
	})
}

func TestBPTreeDeleteAndModel(t *testing.T) {
	e := newEnv(t)
	tree := NewBPTree(e.root)
	model := map[uint64][]byte{}
	rng := rand.New(rand.NewSource(11))
	for step := 0; step < 3000; step++ {
		k := uint64(rng.Intn(400))
		if rng.Intn(3) == 0 {
			err := e.th.Atomic(func(tx *mtm.Tx) error { return tree.Delete(tx, k) })
			if _, ok := model[k]; ok {
				if err != nil {
					t.Fatalf("step %d: %v", step, err)
				}
				delete(model, k)
			} else if err != ErrNotFound {
				t.Fatalf("step %d: %v", step, err)
			}
		} else {
			v := make([]byte, 8+rng.Intn(120))
			rng.Read(v)
			e.atomic(t, func(tx *mtm.Tx) error { return tree.Put(tx, k, v) })
			model[k] = v
		}
	}
	e.atomic(t, func(tx *mtm.Tx) error {
		if err := tree.CheckInvariants(tx); err != nil {
			return err
		}
		if tree.Len(tx) != len(model) {
			return fmt.Errorf("len %d, model %d", tree.Len(tx), len(model))
		}
		for k, v := range model {
			got, err := tree.Get(tx, k)
			if err != nil || !bytes.Equal(got, v) {
				return fmt.Errorf("key %d mismatch (%v)", k, err)
			}
		}
		return nil
	})
}

func TestBPTreeSurvivesCrash(t *testing.T) {
	e := newEnv(t)
	tree := NewBPTree(e.root)
	for i := uint64(0); i < 500; i++ {
		e.atomic(t, func(tx *mtm.Tx) error { return tree.Put(tx, i, []byte{byte(i)}) })
	}
	e.restart(t, scm.NewRandomPolicy(17))
	tree = NewBPTree(e.root)
	e.atomic(t, func(tx *mtm.Tx) error {
		if err := tree.CheckInvariants(tx); err != nil {
			return err
		}
		for i := uint64(0); i < 500; i++ {
			v, err := tree.Get(tx, i)
			if err != nil || len(v) != 1 || v[0] != byte(i) {
				return fmt.Errorf("key %d after crash: %v %v", i, v, err)
			}
		}
		return nil
	})
}

// ---------- RBTree ----------

func TestRBTreeInsertGet(t *testing.T) {
	e := newEnv(t)
	tree := NewRBTree(e.root)
	rng := rand.New(rand.NewSource(3))
	keys := rng.Perm(1000)
	for _, k := range keys {
		k := uint64(k)
		payload := []byte(fmt.Sprintf("payload-%d", k))
		e.atomic(t, func(tx *mtm.Tx) error { return tree.Insert(tx, k, payload) })
	}
	e.atomic(t, func(tx *mtm.Tx) error {
		if err := tree.CheckInvariants(tx); err != nil {
			return err
		}
		if tree.Len(tx) != 1000 {
			return fmt.Errorf("len = %d", tree.Len(tx))
		}
		for _, k := range keys[:50] {
			v, err := tree.Get(tx, uint64(k))
			if err != nil {
				return err
			}
			want := fmt.Sprintf("payload-%d", k)
			if string(v[:len(want)]) != want {
				return fmt.Errorf("payload mismatch for %d", k)
			}
		}
		return nil
	})
}

func TestRBTreeInOrderSorted(t *testing.T) {
	e := newEnv(t)
	tree := NewRBTree(e.root)
	rng := rand.New(rand.NewSource(9))
	for _, k := range rng.Perm(300) {
		k := uint64(k)
		e.atomic(t, func(tx *mtm.Tx) error { return tree.Insert(tx, k, nil) })
	}
	e.atomic(t, func(tx *mtm.Tx) error {
		prev := int64(-1)
		okOrder := true
		tree.InOrder(tx, func(k uint64, _ []byte) bool {
			if int64(k) <= prev {
				okOrder = false
			}
			prev = int64(k)
			return true
		})
		if !okOrder {
			return fmt.Errorf("in-order traversal not sorted")
		}
		return nil
	})
}

func TestRBTreeDeleteModel(t *testing.T) {
	e := newEnv(t)
	tree := NewRBTree(e.root)
	model := map[uint64]bool{}
	rng := rand.New(rand.NewSource(21))
	for step := 0; step < 4000; step++ {
		k := uint64(rng.Intn(300))
		if rng.Intn(2) == 0 {
			e.atomic(t, func(tx *mtm.Tx) error { return tree.Insert(tx, k, nil) })
			model[k] = true
		} else {
			err := e.th.Atomic(func(tx *mtm.Tx) error { return tree.Delete(tx, k) })
			if model[k] {
				if err != nil {
					t.Fatalf("step %d: delete %d: %v", step, k, err)
				}
				delete(model, k)
			} else if err != ErrNotFound {
				t.Fatalf("step %d: delete missing %d: %v", step, k, err)
			}
		}
		if step%500 == 499 {
			e.atomic(t, func(tx *mtm.Tx) error { return tree.CheckInvariants(tx) })
		}
	}
	e.atomic(t, func(tx *mtm.Tx) error {
		if err := tree.CheckInvariants(tx); err != nil {
			return err
		}
		if tree.Len(tx) != len(model) {
			return fmt.Errorf("len %d, model %d", tree.Len(tx), len(model))
		}
		return nil
	})
}

func TestRBTreeSurvivesCrash(t *testing.T) {
	e := newEnv(t)
	tree := NewRBTree(e.root)
	for i := uint64(0); i < 256; i++ {
		e.atomic(t, func(tx *mtm.Tx) error { return tree.Insert(tx, i, []byte{byte(i), 1, 2}) })
	}
	e.restart(t, scm.DropAll{})
	tree = NewRBTree(e.root)
	e.atomic(t, func(tx *mtm.Tx) error {
		if err := tree.CheckInvariants(tx); err != nil {
			return err
		}
		if tree.Len(tx) != 256 {
			return fmt.Errorf("len after crash = %d", tree.Len(tx))
		}
		return nil
	})
}

func TestRBTreePayloadTooLarge(t *testing.T) {
	e := newEnv(t)
	tree := NewRBTree(e.root)
	err := e.th.Atomic(func(tx *mtm.Tx) error {
		return tree.Insert(tx, 1, make([]byte, RBPayload+1))
	})
	if err == nil {
		t.Fatal("oversized payload accepted")
	}
}

// Concurrent use of distinct structures through the same TM.
func TestConcurrentStructures(t *testing.T) {
	e := newEnv(t)
	roots, _, err := e.rt.Static("pds.conc", 8*4)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 4)
	for w := 0; w < 4; w++ {
		go func(w int) {
			th, err := e.tm.NewThread()
			if err != nil {
				done <- err
				return
			}
			tree := NewBPTree(roots.Add(int64(w) * 8))
			for i := uint64(0); i < 300; i++ {
				if err := th.Atomic(func(tx *mtm.Tx) error {
					return tree.Put(tx, i, []byte{byte(w), byte(i)})
				}); err != nil {
					done <- err
					return
				}
			}
			done <- th.Atomic(func(tx *mtm.Tx) error {
				if got := tree.Len(tx); got != 300 {
					return fmt.Errorf("worker %d len = %d", w, got)
				}
				return tree.CheckInvariants(tx)
			})
		}(w)
	}
	for w := 0; w < 4; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestBPTreeDeleteEverythingReleasesAllNodes(t *testing.T) {
	// With rebalancing deletes, removing every key must free every
	// node and value block: after the last delete the root pointer is
	// Nil and a conservative GC finds zero unreachable blocks beyond
	// what it can prove — i.e. nothing was leaked by the tree.
	e := newEnv(t)
	tree := NewBPTree(e.root)
	const n = 3000 // multi-level tree
	rng := rand.New(rand.NewSource(123))
	keys := rng.Perm(n)
	for _, k := range keys {
		k := uint64(k)
		e.atomic(t, func(tx *mtm.Tx) error { return tree.Put(tx, k, []byte{1, 2, 3}) })
	}
	e.atomic(t, func(tx *mtm.Tx) error { return tree.CheckInvariants(tx) })

	// Delete in a different random order, checking invariants as the
	// tree shrinks through merges and root collapses.
	del := rng.Perm(n)
	for i, k := range del {
		k := uint64(k)
		e.atomic(t, func(tx *mtm.Tx) error { return tree.Delete(tx, k) })
		if i%500 == 499 {
			e.atomic(t, func(tx *mtm.Tx) error { return tree.CheckInvariants(tx) })
		}
	}
	e.atomic(t, func(tx *mtm.Tx) error {
		if got := tx.LoadU64(e.root); got != 0 {
			return fmt.Errorf("root = %#x after deleting everything", got)
		}
		return nil
	})

	// No tree blocks may remain allocated: every allocation still live
	// in the heap must be reachable from some persistent word, and
	// since the tree is gone, a GC over the heap must find no garbage
	// (leaked nodes would show up as unreachable allocations).
	gc, err := pgc.New(e.rt, e.tm.Heap())
	if err != nil {
		t.Fatal(err)
	}
	gc.SkipRegions = []pmem.Addr{e.tm.RegionBase()}
	rep, err := gc.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Freed != 0 {
		t.Fatalf("tree leaked %d blocks (%d bytes)", rep.Freed, rep.FreedBytes)
	}
}

func TestBPTreeShrinksToSingleLevel(t *testing.T) {
	// Grow to several levels, then delete down to a handful of keys:
	// the root must collapse back to a leaf and lookups still work.
	e := newEnv(t)
	tree := NewBPTree(e.root)
	const n = 2000
	for i := uint64(0); i < n; i++ {
		e.atomic(t, func(tx *mtm.Tx) error { return tree.Put(tx, i, []byte{byte(i)}) })
	}
	for i := uint64(5); i < n; i++ {
		e.atomic(t, func(tx *mtm.Tx) error { return tree.Delete(tx, i) })
	}
	e.atomic(t, func(tx *mtm.Tx) error {
		if err := tree.CheckInvariants(tx); err != nil {
			return err
		}
		root := pmem.Addr(tx.LoadU64(e.root))
		if _, leaf := bpMeta(tx, root); !leaf {
			return fmt.Errorf("root did not collapse to a leaf")
		}
		for i := uint64(0); i < 5; i++ {
			v, err := tree.Get(tx, i)
			if err != nil || v[0] != byte(i) {
				return fmt.Errorf("survivor %d: %v %v", i, v, err)
			}
		}
		if tree.Len(tx) != 5 {
			return fmt.Errorf("len = %d", tree.Len(tx))
		}
		return nil
	})
}
