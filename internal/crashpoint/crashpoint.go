// Package crashpoint systematically explores a workload's crash points.
//
// The scm emulator's crash model (paper §2) reverts unpersisted writes at
// an arbitrary instant; cmd/crashtest samples that space with seeded
// random policies. This package makes the search exhaustive and
// deterministic instead: every persistence-relevant device event — a
// dirty-line flush, a fence (with or without a write-combining drain), a
// DMA page fill, a whole-cache eviction — is a *crash point*, the instant
// just before that event takes effect. A workload with N events has N+1
// crash points (point N is "after the last event": the residual
// unpersisted state of a completed run).
//
// Exploration runs the workload once under a Recorder to count its events,
// then replays it once per (crash point, crash policy) pair. Each replay
// installs a Trigger that, at event k, freezes the device (scm.PowerCut)
// and panics with scm.PowerFailure; the freeze guarantees nothing on the
// unwinding path — deferred transaction rollbacks, cleanup handlers — can
// alter the durable image the simulated failure left behind. The explorer
// then applies the crash policy to the surviving bytes (scm.CrashMidOp)
// and calls the workload's recovery oracle, which reopens the stack over
// the crashed image and checks the layer's durability contract.
//
// Workloads must be deterministic: single-goroutine bodies, no map
// iteration, fixed seeds. The explorer verifies this by checking that each
// replay reaches its target event.
package crashpoint

import (
	"repro/internal/scm"
)

// Recorder counts persistence events by kind. Install it with
// Device.SetProbe for the recording pass.
type Recorder struct {
	counts [scm.ProbeKindCount]int64
	total  int64
}

// Event implements scm.Probe.
func (r *Recorder) Event(kind scm.ProbeKind, ctx uint64, off int64, n int) {
	r.total++
	if int(kind) < len(r.counts) {
		r.counts[kind]++
	}
}

// Total reports the number of events recorded.
func (r *Recorder) Total() int64 { return r.total }

// ByKind reports the recorded event counts keyed by kind name.
func (r *Recorder) ByKind() map[string]int64 {
	out := make(map[string]int64, len(r.counts))
	for k, n := range r.counts {
		if n > 0 {
			out[scm.ProbeKind(k).String()] = n
		}
	}
	return out
}

// Trigger simulates a power failure at crash point K: immediately before
// persistence event K takes effect it freezes the device and panics with
// scm.PowerFailure. It fires at most once.
type Trigger struct {
	dev *scm.Device
	k   int64

	n     int64         // events seen so far
	Fired bool          // whether the power failure was injected
	Kind  scm.ProbeKind // kind of the event the failure preempted
}

// NewTrigger returns a trigger that cuts power at event k of dev.
func NewTrigger(dev *scm.Device, k int64) *Trigger {
	return &Trigger{dev: dev, k: k}
}

// Event implements scm.Probe.
func (t *Trigger) Event(kind scm.ProbeKind, ctx uint64, off int64, n int) {
	if t.Fired {
		return
	}
	if t.n == t.k {
		t.Fired = true
		t.Kind = kind
		t.dev.PowerCut()
		panic(scm.PowerFailure{})
	}
	t.n++
}

// Seen reports how many events the trigger observed (excluding the one it
// preempted).
func (t *Trigger) Seen() int64 { return t.n }

// MultiTrigger is Trigger generalized over several independent devices
// (keyspace shards): one event counter spans them all in issue order,
// and the power failure at event K cuts exactly the device that issued
// event K — the other devices stay live, modeling one shard's power
// domain failing while the rest keep committing. Bind attaches the
// shared counter to each device. Like Trigger it assumes a
// single-goroutine body.
type MultiTrigger struct {
	k int64

	n     int64         // events seen so far, across all bound devices
	Fired bool          // whether the power failure was injected
	Kind  scm.ProbeKind // kind of the event the failure preempted
	Dev   *scm.Device   // the device the failure landed on
}

// NewMultiTrigger returns a trigger that cuts power at global event k.
func NewMultiTrigger(k int64) *MultiTrigger {
	return &MultiTrigger{k: k}
}

// Bind returns the probe to install on dev, sharing the trigger's
// counter with every other bound device.
func (t *MultiTrigger) Bind(dev *scm.Device) scm.Probe {
	return boundTrigger{t: t, dev: dev}
}

// Seen reports how many events the trigger observed (excluding the one
// it preempted). Events issued by surviving devices after the cut are
// not counted: the recording pass's numbering stops being comparable
// once one device is frozen out of the sequence.
func (t *MultiTrigger) Seen() int64 { return t.n }

type boundTrigger struct {
	t   *MultiTrigger
	dev *scm.Device
}

// Event implements scm.Probe.
func (b boundTrigger) Event(kind scm.ProbeKind, ctx uint64, off int64, n int) {
	t := b.t
	if t.Fired {
		return
	}
	if t.n == t.k {
		t.Fired = true
		t.Kind = kind
		t.Dev = b.dev
		b.dev.PowerCut()
		panic(scm.PowerFailure{})
	}
	t.n++
}
