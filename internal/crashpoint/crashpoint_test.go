package crashpoint

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/scm"
)

func openDev(t *testing.T) *scm.Device {
	t.Helper()
	d, err := scm.Open(scm.Config{Size: 64 << 10, Mode: scm.DelayOff})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestRecorderTaxonomy pins down which device operations count as
// persistence events, and of which kind.
func TestRecorderTaxonomy(t *testing.T) {
	d := openDev(t)
	ctx := d.NewContext()
	rec := &Recorder{}
	d.SetProbe(rec)
	defer d.SetProbe(nil)

	ctx.StoreU64(0, 1) // cached store: not an event
	ctx.Flush(0)       // dirty-line write-back: flush
	ctx.Flush(0)       // clean line: not an event
	ctx.Fence()        // empty WC buffer: fence
	ctx.WTStoreU64(64, 2)
	ctx.Fence()                          // drains one word: wt-drain
	d.DurableFill(128, make([]byte, 64)) // DMA fill: fill
	ctx.StoreU64(192, 3)
	d.FlushAll() // whole-cache eviction: evict-all

	want := map[string]int64{
		"flush":     1,
		"fence":     1,
		"wt-drain":  1,
		"fill":      1,
		"evict-all": 1,
	}
	if got := rec.ByKind(); !reflect.DeepEqual(got, want) {
		t.Fatalf("recorded %v, want %v", got, want)
	}
	if rec.Total() != 5 {
		t.Fatalf("total %d, want 5", rec.Total())
	}
}

// shadowWorkload builds a generation-swinging shadow-update workload over
// a bare device. With broken=false it follows the correct protocol (new
// buffer made durable, then the reference swung durably); with
// broken=true it swings the reference before the buffer is durable — the
// classic missing-fence bug the explorer must catch.
func shadowWorkload(broken bool) Workload {
	const (
		refOff = 0
		bufA   = 512
		bufB   = 576
		gens   = 4
	)
	encode := func(target int64, gen uint64) uint64 { return uint64(target) | gen<<32 }
	decode := func(v uint64) (int64, uint64) { return int64(v & 0xffffffff), v >> 32 }

	return func() (*Run, error) {
		dev, err := scm.Open(scm.Config{Size: 64 << 10, Mode: scm.DelayOff})
		if err != nil {
			return nil, err
		}
		ctx := dev.NewContext()
		acked := uint64(0)

		writeBuf := func(target int64, gen uint64) {
			for i := int64(0); i < 8; i++ {
				ctx.StoreU64(target+i*8, gen)
			}
			ctx.Flush(target)
			ctx.Fence()
		}
		swingRef := func(target int64, gen uint64) {
			ctx.WTStoreU64(refOff, encode(target, gen))
			ctx.Fence()
		}

		return &Run{
			Dev: dev,
			Body: func() error {
				for gen := uint64(1); gen <= gens; gen++ {
					target := int64(bufA)
					if gen%2 == 0 {
						target = bufB
					}
					if broken {
						swingRef(target, gen) // published before durable!
						writeBuf(target, gen)
					} else {
						writeBuf(target, gen)
						swingRef(target, gen)
					}
					acked = gen
				}
				return nil
			},
			Check: func() error {
				// A fresh context reads the post-crash image.
				rd := dev.NewContext()
				ref := rd.LoadU64(refOff)
				if ref == 0 {
					if acked > 0 {
						return fmt.Errorf("ref lost after %d acked generations", acked)
					}
					return nil
				}
				target, gen := decode(ref)
				if gen < acked || gen > acked+1 {
					return fmt.Errorf("ref generation %d, acked %d", gen, acked)
				}
				for i := int64(0); i < 8; i++ {
					if v := rd.LoadU64(target + i*8); v != gen {
						return fmt.Errorf("ref points at gen %d but word %d of its buffer reads %d", gen, i, v)
					}
				}
				return nil
			},
		}, nil
	}
}

func TestExploreShadowUpdateProtocol(t *testing.T) {
	rep, err := Explore(shadowWorkload(false), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Per generation: one buffer flush, one buffer fence, one ref drain.
	if rep.Events != 12 || rep.Points != 13 {
		t.Fatalf("got %d events / %d points, want 12 / 13", rep.Events, rep.Points)
	}
	if rep.Failed() {
		t.Fatalf("correct protocol failed:\n%v", rep.Failures)
	}
	if rep.Runs != 13*len(DefaultPolicies()) {
		t.Fatalf("ran %d replays, want %d", rep.Runs, 13*len(DefaultPolicies()))
	}
}

// TestExploreCatchesBrokenRecovery is the harness's reason to exist: a
// deliberately broken persistence protocol (reference published before its
// data is durable) must be caught, and the report must localize a failing
// crash point inside the vulnerable window.
func TestExploreCatchesBrokenRecovery(t *testing.T) {
	rep, err := Explore(shadowWorkload(true), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Failed() {
		t.Fatal("broken shadow-update protocol survived every crash point")
	}
	// The workload is vulnerable from the very first instant: the ref's
	// streaming write is in flight before event 0 (its drain fence), so
	// a policy that lands that word exposes the never-written buffer.
	if first := rep.FirstFailing(); first != 0 {
		t.Fatalf("first failing point %d, want 0", first)
	}
}

// TestExploreDeterminism: recording the same workload twice must count the
// same events, or replays would target the wrong instants.
func TestExploreDeterminism(t *testing.T) {
	for _, broken := range []bool{false, true} {
		var totals []int64
		for i := 0; i < 2; i++ {
			run, err := shadowWorkload(broken)()
			if err != nil {
				t.Fatal(err)
			}
			rec := &Recorder{}
			run.Dev.SetProbe(rec)
			if err := run.Body(); err != nil {
				t.Fatal(err)
			}
			run.Dev.SetProbe(nil)
			totals = append(totals, rec.Total())
		}
		if totals[0] != totals[1] {
			t.Fatalf("broken=%v: recorded %d then %d events", broken, totals[0], totals[1])
		}
	}
}

func TestSchedules(t *testing.T) {
	if got := (Full{}).Points(4); !reflect.DeepEqual(got, []int64{0, 1, 2, 3}) {
		t.Fatalf("Full: %v", got)
	}
	if got := (Stride{N: 2}).Points(5); !reflect.DeepEqual(got, []int64{0, 2, 4}) {
		t.Fatalf("Stride over 5: %v", got)
	}
	if got := (Stride{N: 2}).Points(6); !reflect.DeepEqual(got, []int64{0, 2, 4, 5}) {
		t.Fatalf("Stride over 6 must include the last point: %v", got)
	}
	if got := (Budget{N: 100}).Points(7); len(got) != 7 {
		t.Fatalf("oversized Budget must degrade to Full: %v", got)
	}
	got := (Budget{N: 5}).Points(100)
	if len(got) != 5 {
		t.Fatalf("Budget emitted %d points: %v", len(got), got)
	}
	seen := map[int64]bool{}
	for _, k := range got {
		if k < 0 || k >= 100 || seen[k] {
			t.Fatalf("Budget emitted invalid or duplicate point %d in %v", k, got)
		}
		seen[k] = true
	}
	if !seen[0] || !seen[99] || !seen[50] {
		t.Fatalf("Budget sample must cover endpoints and midpoint: %v", got)
	}
}

func TestMaxFailuresStopsEarly(t *testing.T) {
	rep, err := Explore(shadowWorkload(true), Options{MaxFailures: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Failures) != 1 {
		t.Fatalf("collected %d failures, want exactly 1", len(rep.Failures))
	}
}

// TestMultiTrigger pins the multi-device trigger contract: events from
// every bound device share one global counter, the k-th event power-cuts
// exactly the device that raised it (recording which), and the surviving
// devices keep operating afterwards without tripping the trigger again.
func TestMultiTrigger(t *testing.T) {
	d0, d1 := openDev(t), openDev(t)
	trig := NewMultiTrigger(2) // events 0,1 pass; event 2 cuts
	d0.SetProbe(trig.Bind(d0))
	d1.SetProbe(trig.Bind(d1))
	defer d0.SetProbe(nil)
	defer d1.SetProbe(nil)

	c0, c1 := d0.NewContext(), d1.NewContext()
	cut := func() (fired bool) {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(scm.PowerFailure); !ok {
					panic(r)
				}
				fired = true
			}
		}()
		c0.StoreU64(0, 1)
		c0.Flush(0) // event 0 on d0
		c1.StoreU64(0, 2)
		c1.Flush(0) // event 1 on d1
		c1.Fence()  // event 2 on d1: the cut
		return false
	}()
	if !cut {
		t.Fatal("trigger never fired")
	}
	if !trig.Fired || trig.Dev != d1 || trig.Kind != scm.ProbeFence {
		t.Fatalf("Fired=%v Dev==d1:%v Kind=%v, want fired fence on d1", trig.Fired, trig.Dev == d1, trig.Kind)
	}
	if !d1.IsPowerCut() || d0.IsPowerCut() {
		t.Fatalf("IsPowerCut: d0=%v d1=%v, want only d1", d0.IsPowerCut(), d1.IsPowerCut())
	}
	// The survivor keeps working, and its events no longer count or trip.
	c0.StoreU64(64, 3)
	c0.Flush(64)
	c0.Fence()
	if got := trig.Seen(); got != 2 {
		t.Fatalf("Seen() = %d after post-cut survivor events, want 2", got)
	}
}
