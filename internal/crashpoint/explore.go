package crashpoint

import (
	"fmt"
	"runtime/debug"
	"sort"
	"strings"

	"repro/internal/scm"
	"repro/internal/telemetry"
)

var (
	telRuns     = telemetry.NewCounter("crashpoint_runs_total", "crash-point replays executed")
	telFailures = telemetry.NewCounter("crashpoint_failures_total", "crash-point replays whose recovery oracle failed")
	telPoints   = telemetry.NewGauge("crashpoint_points", "crash points enumerated by the most recent recording pass")
)

// Run is one instance of a workload: a fresh device, the workload body,
// and the recovery oracle over that device.
type Run struct {
	// Dev is the device the body runs against. The explorer installs its
	// probes on it and crashes it.
	Dev *scm.Device
	// Devs, when non-empty, replaces Dev: the workload spans several
	// independent devices (keyspace shards) and a crash point may land
	// on any one of them. Events are counted globally across all devices
	// in issue order, the power failure cuts exactly the device whose
	// event the point preempts, and every device is rebooted under the
	// crash policy before the oracle runs. A multi-device Body MAY
	// recover scm.PowerFailure to keep operating the surviving devices
	// (identify the dead one with Device.IsPowerCut); the cut device's
	// freeze still guarantees the recovered path cannot alter its image.
	Devs []*scm.Device
	// Body executes the workload. It must be deterministic (single
	// goroutine, fixed seeds, no map iteration): every replay must issue
	// the identical persistence-event sequence. A power-failure panic
	// unwinds through Body; a single-device Body must not recover
	// scm.PowerFailure.
	Body func() error
	// Check reopens the software stack over the device's surviving bytes
	// and runs the layer's recovery oracle, returning an error when a
	// durability contract is violated. It runs after every crash, so it
	// must cope with any prefix of Body's effects (track acknowledged
	// progress in variables Body updates as it goes).
	Check func() error
}

// devices returns the run's device set: Devs when present, else [Dev].
func (r *Run) devices() []*scm.Device {
	if len(r.Devs) > 0 {
		return r.Devs
	}
	return []*scm.Device{r.Dev}
}

// Workload constructs identical Runs; the explorer calls it once for the
// recording pass and once per replay.
type Workload func() (*Run, error)

// Options tunes an exploration.
type Options struct {
	// Policies are the crash policies applied at every explored point.
	// Nil selects DefaultPolicies.
	Policies []NamedPolicy
	// Schedule picks the crash points to replay. Nil selects Full.
	Schedule Schedule
	// MaxFailures stops the exploration once this many oracle failures
	// have been collected. Zero selects 16.
	MaxFailures int
	// Progress, when non-nil, is called after every replay with the
	// number of replays done and planned.
	Progress func(done, total int)
}

func (o *Options) fill() {
	if o.Policies == nil {
		o.Policies = DefaultPolicies()
	}
	if o.Schedule == nil {
		o.Schedule = Full{}
	}
	if o.MaxFailures <= 0 {
		o.MaxFailures = 16
	}
}

// Failure records one oracle violation.
type Failure struct {
	Point  int64  // the crash point
	Policy string // the policy name
	Kind   string // kind of the preempted event ("end" for the final point)
	Err    error  // what the oracle reported
}

func (f Failure) String() string {
	return fmt.Sprintf("point %d (%s, policy %s): %v", f.Point, f.Kind, f.Policy, f.Err)
}

// Report summarizes an exploration.
type Report struct {
	Events   int64            // persistence events in the recording pass
	Points   int64            // crash points (Events + 1)
	Explored int              // distinct points replayed
	Runs     int              // total replays (points × policies)
	ByKind   map[string]int64 // recorded event counts by kind
	Failures []Failure        // oracle violations, in exploration order
}

// Failed reports whether any oracle violation was found.
func (r *Report) Failed() bool { return len(r.Failures) > 0 }

// FirstFailing returns the smallest failing crash point, or -1.
func (r *Report) FirstFailing() int64 {
	first := int64(-1)
	for _, f := range r.Failures {
		if first < 0 || f.Point < first {
			first = f.Point
		}
	}
	return first
}

func (r *Report) String() string {
	var b strings.Builder
	kinds := make([]string, 0, len(r.ByKind))
	for k := range r.ByKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	fmt.Fprintf(&b, "%d events (", r.Events)
	for i, k := range kinds {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %d", k, r.ByKind[k])
	}
	fmt.Fprintf(&b, "), %d points explored, %d replays, %d failures", r.Explored, r.Runs, len(r.Failures))
	return b.String()
}

// Explore enumerates w's crash points and replays the scheduled subset
// under every policy. It returns a non-nil Report with the collected
// oracle failures; the error return is reserved for harness problems (the
// workload failing on its own, nondeterminism, setup errors), which make
// the exploration itself meaningless.
func Explore(w Workload, opt Options) (*Report, error) {
	opt.fill()

	// Recording pass: enumerate the events of an uninterrupted run.
	run, err := w()
	if err != nil {
		return nil, fmt.Errorf("crashpoint: workload setup: %w", err)
	}
	rec := &Recorder{}
	for _, d := range run.devices() {
		d.SetProbe(rec)
	}
	err = run.Body()
	for _, d := range run.devices() {
		d.SetProbe(nil)
	}
	if err != nil {
		return nil, fmt.Errorf("crashpoint: recording run failed: %w", err)
	}
	// The oracle must hold on the uninterrupted run, or every replay
	// would report noise.
	for _, d := range run.devices() {
		d.Crash(scm.KeepAll{})
	}
	if err := checkGuarded(run.Check); err != nil {
		return nil, fmt.Errorf("crashpoint: oracle rejects the uninterrupted workload: %w", err)
	}

	rep := &Report{
		Events: rec.Total(),
		Points: rec.Total() + 1,
		ByKind: rec.ByKind(),
	}
	telPoints.Set(rep.Points)

	points := opt.Schedule.Points(rep.Points)
	rep.Explored = len(points)
	planned := len(points) * len(opt.Policies)
	for _, k := range points {
		for _, pol := range opt.Policies {
			fail, err := exploreOne(w, k, rep.Events, pol)
			rep.Runs++
			telRuns.Inc()
			if opt.Progress != nil {
				opt.Progress(rep.Runs, planned)
			}
			if err != nil {
				return rep, err
			}
			if fail != nil {
				rep.Failures = append(rep.Failures, *fail)
				telFailures.Inc()
				if len(rep.Failures) >= opt.MaxFailures {
					return rep, nil
				}
			}
		}
	}
	return rep, nil
}

// exploreOne replays the workload once, cutting power at event k and
// applying pol to the in-flight writes.
func exploreOne(w Workload, k, events int64, pol NamedPolicy) (*Failure, error) {
	run, err := w()
	if err != nil {
		return nil, fmt.Errorf("crashpoint: workload setup: %w", err)
	}
	devs := run.devices()
	trig := NewMultiTrigger(k)
	for _, d := range devs {
		d.SetProbe(trig.Bind(d))
	}
	berr, interrupted := runGuarded(run.Body)
	for _, d := range devs {
		d.SetProbe(nil)
	}
	if berr != nil {
		// A multi-device body that recovers the power failure must still
		// succeed on the surviving devices; any error is a workload bug,
		// not an oracle finding.
		return nil, fmt.Errorf("crashpoint: point %d: workload failed: %w", k, berr)
	}
	if !interrupted && !trig.Fired && k < events {
		return nil, fmt.Errorf(
			"crashpoint: point %d never reached: replay saw only %d events where the recording saw %d (workload nondeterministic?)",
			k, trig.Seen(), events)
	}
	kind := "end"
	if trig.Fired {
		kind = trig.Kind.String()
	}
	for _, d := range devs {
		d.CrashMidOp(pol.New())
	}
	if err := checkGuarded(run.Check); err != nil {
		return &Failure{Point: k, Policy: pol.Name, Kind: kind, Err: err}, nil
	}
	return nil, nil
}

// runGuarded runs the workload body, converting the trigger's
// PowerFailure panic into the interrupted flag. Other panics propagate.
func runGuarded(body func() error) (err error, interrupted bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(scm.PowerFailure); ok {
				err = nil
				interrupted = true
				return
			}
			panic(r)
		}
	}()
	return body(), false
}

// checkGuarded runs a recovery oracle, converting a panic into a failure:
// recovery code must never panic on a crash-corrupted image, so a panic is
// itself an oracle violation rather than a harness error.
func checkGuarded(check func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("recovery panicked: %v\n%s", r, debug.Stack())
		}
	}()
	return check()
}
