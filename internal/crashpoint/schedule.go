package crashpoint

import "os"

// Schedule selects which of a workload's crash points to replay. total is
// the number of crash points (events + 1); returned points must lie in
// [0, total).
type Schedule interface {
	Points(total int64) []int64
}

// Full replays every crash point.
type Full struct{}

// Points implements Schedule.
func (Full) Points(total int64) []int64 {
	pts := make([]int64, total)
	for i := range pts {
		pts[i] = int64(i)
	}
	return pts
}

// Stride replays every N-th crash point, always including the first and
// the last.
type Stride struct{ N int64 }

// Points implements Schedule.
func (s Stride) Points(total int64) []int64 {
	n := s.N
	if n < 1 {
		n = 1
	}
	var pts []int64
	for k := int64(0); k < total; k += n {
		pts = append(pts, k)
	}
	if total > 0 && pts[len(pts)-1] != total-1 {
		pts = append(pts, total-1)
	}
	return pts
}

// Budget replays at most N crash points, chosen in bisection order: the
// endpoints first, then recursive interval midpoints. A small budget thus
// still spreads over the whole run rather than clustering at its start,
// and growing the budget only refines the same sample.
type Budget struct{ N int }

// Points implements Schedule.
func (b Budget) Points(total int64) []int64 {
	if int64(b.N) >= total {
		return Full{}.Points(total)
	}
	if b.N <= 0 || total <= 0 {
		return nil
	}
	seen := make(map[int64]bool, b.N)
	pts := make([]int64, 0, b.N)
	emit := func(k int64) {
		if len(pts) < b.N && !seen[k] {
			seen[k] = true
			pts = append(pts, k)
		}
	}
	emit(0)
	emit(total - 1)
	type span struct{ lo, hi int64 } // half-open
	queue := []span{{0, total}}
	for len(queue) > 0 && len(pts) < b.N {
		s := queue[0]
		queue = queue[1:]
		if s.hi-s.lo < 2 {
			continue
		}
		mid := s.lo + (s.hi-s.lo)/2
		emit(mid)
		queue = append(queue, span{s.lo, mid}, span{mid + 1, s.hi})
	}
	return pts
}

// exhaustiveEnv, when set to 1, forces Full exploration regardless of
// -short; the nightly CI job sets it.
const exhaustiveEnv = "CRASHPOINT_EXHAUSTIVE"

// TestSchedule returns the schedule package tests should use: Full by
// default, a bisection Budget sample under -short (the PR-gating CI
// configuration), and always Full when CRASHPOINT_EXHAUSTIVE=1 (nightly
// CI).
func TestSchedule(short bool, budget int) Schedule {
	if os.Getenv(exhaustiveEnv) == "1" {
		return Full{}
	}
	if short {
		return Budget{N: budget}
	}
	return Full{}
}
