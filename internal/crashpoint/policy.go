package crashpoint

import "repro/internal/scm"

// NamedPolicy couples a crash policy constructor with a display name. New
// is called once per replay so stateful policies start fresh.
type NamedPolicy struct {
	Name string
	New  func() scm.CrashPolicy
}

// SplitPolicy is a deterministic per-line (and per-word) adversarial
// policy: it keeps roughly half of the in-flight writes, selected by a
// hash of the offset and salt. Unlike RandomPolicy it depends only on the
// write's address, so a given (point, salt) pair always loses exactly the
// same lines — failures reproduce without replaying a PRNG call sequence.
// Different salts lose different halves, together covering mixed
// survivor patterns DropAll and KeepAll cannot produce.
type SplitPolicy struct{ Salt uint64 }

func (p SplitPolicy) keep(off int64) bool {
	x := uint64(off)/scm.WordSize + p.Salt
	// SplitMix64 finalizer: avalanche so adjacent lines decorrelate.
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x&1 == 0
}

// KeepLine implements scm.CrashPolicy.
func (p SplitPolicy) KeepLine(off int64) bool { return p.keep(off) }

// KeepWord implements scm.CrashPolicy.
func (p SplitPolicy) KeepWord(off int64) bool { return p.keep(off) }

// DefaultPolicies is the standard policy set: the two extremes plus two
// differently-salted adversarial splits.
func DefaultPolicies() []NamedPolicy {
	return []NamedPolicy{
		{Name: "drop-all", New: func() scm.CrashPolicy { return scm.DropAll{} }},
		{Name: "keep-all", New: func() scm.CrashPolicy { return scm.KeepAll{} }},
		{Name: "split-1", New: func() scm.CrashPolicy { return SplitPolicy{Salt: 1} }},
		{Name: "split-2", New: func() scm.CrashPolicy { return SplitPolicy{Salt: 2} }},
	}
}
