// Package rawl implements Mnemosyne's raw word log (§4.4 of the paper): a
// high-performance append-only log of uninterpreted word-size values,
// stored in persistent memory as a fixed-size single-producer /
// single-consumer Lamport circular buffer.
//
// The log's novelty is the tornbit protocol for atomic appends with a
// single fence. Every 64-bit word in the log buffer reserves one bit — the
// torn bit — whose value is constant within one pass over the buffer and
// reverses sense when the log wraps around. Because streaming writes
// (movntq) are unordered, a crash can persist later words of an append
// while losing earlier ones; on recovery, such a hole shows up as a word
// whose torn bit is out of sequence, and the scan stops there. A correct
// prefix of the log is thus recoverable with no commit records and no
// checksums, and an append needs only one fence to become durable.
//
// Payload words are packed 63 bits per log word, the 64th being the torn
// bit. Each record is padded to a whole number of log words so records
// start on word boundaries; this keeps truncation positions exact and
// recovery parsing simple, at a cost of at most 62 bits of padding per
// record.
//
// Package rawl also provides BaseLog, the conventional alternative the
// paper compares against in Table 6: whole-word records followed by a
// commit record, requiring two fences per durable append.
package rawl

import (
	"errors"
	"fmt"

	"repro/internal/pmem"
	"repro/internal/telemetry"
)

// Log activity metrics, aggregated over every log in the process. Append
// is a hot path (every transaction commit passes through it), so the
// instrumentation is two uncontended atomic adds and nothing else.
var (
	telAppends = telemetry.NewCounter("rawl_appends_total",
		"records appended to tornbit logs")
	telAppendBytes = telemetry.NewCounter("rawl_append_payload_bytes_total",
		"payload bytes appended to tornbit logs")
	telTruncations = telemetry.NewCounter("rawl_truncations_total",
		"log truncations (whole-log and consumer-side)")
	telLogFull = telemetry.NewCounter("rawl_log_full_total",
		"appends rejected because the log was full")
)

// Log header layout, at the log's base address.
const (
	hdrMagicOff = 0  // format magic
	hdrWordsOff = 8  // buffer capacity in words
	hdrHeadOff  = 16 // packed head: bit63 phase, bits 56-62 torn-bit pos, low bits index
	hdrSize     = 64 // buffer starts here (cache-line aligned)

	logMagic = 0x4d4e5241574c3031 // "MNRAWL01"

	// recMagic marks a record header in the payload stream. Padding is
	// zeros, so a zero "header" cleanly terminates parsing.
	recMagic = 0xA5
)

// ErrLogFull reports that an append does not fit: the consumer must
// truncate before the producer can continue.
var ErrLogFull = errors.New("rawl: log full")

// Pos identifies a log position (a word index plus the torn-bit phase at
// that index). Append returns the position just past the appended record;
// TruncateTo with that position consumes the record and everything before
// it.
type Pos struct {
	idx   int64
	phase uint64
}

// Log is a tornbit raw word log. The append side (Append, Flush,
// TruncateAll) belongs to a single producer goroutine. TruncateTo may be
// called by a separate consumer goroutine with its own pmem.Memory, per
// the Lamport single-producer/single-consumer discipline.
type Log struct {
	mem  pmem.Memory
	base pmem.Addr
	n    int64 // buffer capacity in words

	// Producer state (volatile; reconstructed by recovery).
	tail  int64
	phase uint64
	// tornPos is the bit position donated to the torn bit in every log
	// word (63 by default). Rotate moves it to spread wear over all 64
	// bit positions, per the paper's §4.5: "RAWL's tornbits may
	// periodically be shifted to avoid writing 0's and 1's continuously
	// to the same bits."
	tornPos uint
}

// Size returns the number of bytes a log with capacity words of buffer
// occupies in persistent memory.
func Size(words int64) int64 { return hdrSize + words*8 }

// MinWords is the smallest useful buffer capacity.
const MinWords = 8

// Create formats a new log at base with a buffer of words 64-bit words.
// The buffer is zeroed so the first pass writes torn bit 1.
func Create(mem pmem.Memory, base pmem.Addr, words int64) (*Log, error) {
	if words < MinWords {
		return nil, fmt.Errorf("rawl: capacity %d below minimum %d", words, MinWords)
	}
	l := &Log{mem: mem, base: base, n: words, tail: 0, phase: 1, tornPos: 63}
	for i := int64(0); i < words; i++ {
		mem.WTStoreU64(l.wordAddr(i), 0)
	}
	mem.WTStoreU64(base.Add(hdrWordsOff), uint64(words))
	mem.WTStoreU64(base.Add(hdrHeadOff), packHead(0, 1, 63))
	mem.Fence()
	mem.WTStoreU64(base.Add(hdrMagicOff), logMagic)
	mem.Fence()
	return l, nil
}

// Open attaches to an existing log and recovers its contents: it returns
// every record that was completely durable at the crash, in append order.
// The producer's tail is positioned after the last complete record, so
// appending may resume immediately. Callers normally replay the records
// and then TruncateAll.
func Open(mem pmem.Memory, base pmem.Addr) (*Log, [][]uint64, error) {
	if mem.LoadU64(base.Add(hdrMagicOff)) != logMagic {
		return nil, nil, fmt.Errorf("rawl: no log at %v", base)
	}
	n := int64(mem.LoadU64(base.Add(hdrWordsOff)))
	if n < MinWords {
		return nil, nil, fmt.Errorf("rawl: corrupt capacity %d", n)
	}
	// The head is updated in place over the log's lifetime, so unlike the
	// write-once capacity it is exposed to corruption; validate it rather
	// than index out of the buffer.
	if idx, _, tornPos := unpackHead(mem.LoadU64(base.Add(hdrHeadOff))); idx >= n || tornPos > 63 {
		return nil, nil, fmt.Errorf("rawl: corrupt head (index %d of %d, torn bit %d)", idx, n, tornPos)
	}
	l := &Log{mem: mem, base: base, n: n}
	recs := l.recover()
	return l, recs, nil
}

func (l *Log) wordAddr(i int64) pmem.Addr { return l.base.Add(hdrSize + i*8) }

func packHead(idx int64, phase uint64, tornPos uint) uint64 {
	return phase<<63 | uint64(tornPos&0x7f)<<56 | uint64(idx)
}

func unpackHead(v uint64) (idx int64, phase uint64, tornPos uint) {
	return int64(v & ((1 << 56) - 1)), v >> 63, uint(v>>56) & 0x7f
}

func (l *Log) loadHead() (idx int64, phase uint64, tornPos uint) {
	return unpackHead(l.mem.LoadU64(l.base.Add(hdrHeadOff)))
}

// packWord inserts the torn bit at position p into a 63-bit payload.
func packWord(payload, torn uint64, p uint) uint64 {
	if p == 63 {
		return payload | torn<<63
	}
	lowMask := uint64(1)<<p - 1
	return payload&lowMask | torn<<p | payload>>p<<(p+1)
}

// unpackWord extracts the 63-bit payload and the torn bit at position p.
func unpackWord(w uint64, p uint) (payload, torn uint64) {
	if p == 63 {
		return w &^ (1 << 63), w >> 63
	}
	lowMask := uint64(1)<<p - 1
	return w&lowMask | w>>(p+1)<<p, w >> p & 1
}

// used returns the number of buffer words between the durable head and
// the producer's tail.
func (l *Log) used() int64 {
	head, _, _ := l.loadHead()
	u := l.tail - head
	if u < 0 {
		u += l.n
	}
	return u
}

// Capacity returns the buffer capacity in words.
func (l *Log) Capacity() int64 { return l.n }

// FreeWords returns how many buffer words an append may consume right now.
func (l *Log) FreeWords() int64 { return l.n - 1 - l.used() }

// UsedWords returns how many buffer words hold live (untruncated)
// records. Zero means the log is empty — the handoff contract mtm's
// thread-slot recycling verifies before a slot is reused.
func (l *Log) UsedWords() int64 { return l.used() }

// recordWords returns the buffer words consumed by a record of k payload
// words: a header word plus k words, packed 63 payload bits per log word.
func recordWords(k int64) int64 {
	bits := (1 + k) * 64
	return (bits + 62) / 63
}

// RecordWords returns the buffer words a record of k payload words will
// consume. Callers that must append a sequence of records without an
// intervening truncation (mtm's batched undo commit appends an old-value
// record and, after its in-place stores, a commit marker) use it to
// precheck that the whole sequence fits in the free space.
func RecordWords(k int64) int64 { return recordWords(k) }

// MaxRecordWords returns the largest record payload (in words) this log
// can hold.
func (l *Log) MaxRecordWords() int64 {
	// Invert recordWords against the usable capacity n-1.
	k := (l.n - 1) * 63 / 64
	for recordWords(k) > l.n-1 {
		k--
	}
	return k - 1
}

// Append appends a record of payload words to the log using streaming
// writes. The record is not durable until Flush (or any later Fence on
// this Memory). Returns the position just past the record, for use with
// TruncateTo. Returns ErrLogFull when the record does not fit until the
// consumer truncates.
//
// This is the paper's log_append: "writes record rec by appending it at
// the end of the log" without guaranteeing persistence.
func (l *Log) Append(rec []uint64) (Pos, error) {
	k := int64(len(rec))
	if k == 0 {
		return Pos{}, errors.New("rawl: empty record")
	}
	if k >= 1<<32 {
		return Pos{}, errors.New("rawl: record too large")
	}
	need := recordWords(k)
	if need > l.n-1 {
		return Pos{}, fmt.Errorf("rawl: record of %d words exceeds log capacity", k)
	}
	if need > l.FreeWords() {
		telLogFull.Inc()
		return Pos{}, ErrLogFull
	}

	var acc uint64 // pending stream bits, LSB first
	var accN uint
	emit := func(w uint64) {
		acc |= w << accN
		// accN+64 >= 63 always holds, so at least one log word is
		// ready.
		l.emitWord(acc &^ (1 << 63))
		consumed := 63 - accN // bits of w consumed into the emitted word
		acc = w >> consumed
		accN = accN + 64 - 63
		if accN >= 63 {
			l.emitWord(acc &^ (1 << 63))
			acc >>= 63
			accN -= 63
		}
	}
	emit(uint64(recMagic)<<56 | uint64(k))
	for _, w := range rec {
		emit(w)
	}
	if accN > 0 {
		l.emitWord(acc &^ (1 << 63)) // pad the final word with zeros
	}
	telAppends.Inc()
	telAppendBytes.Add(uint64(k) * 8)
	if telemetry.TraceEnabled() {
		telemetry.Emit(telemetry.EvLogAppend, uint64(l.base), uint64(k), uint64(need))
	}
	return Pos{idx: l.tail, phase: l.phase}, nil
}

// emitWord streams one 63-bit payload word with the current torn bit and
// advances the tail, flipping the phase on wraparound. The torn bit is the
// word's most significant bit.
func (l *Log) emitWord(payload uint64) {
	l.mem.WTStoreU64(l.wordAddr(l.tail), packWord(payload, l.phase, l.tornPos))
	l.tail++
	if l.tail == l.n {
		l.tail = 0
		l.phase ^= 1
	}
}

// Flush blocks until all prior appends are durable: the paper's log_flush,
// a single fence. This is the entire durability protocol — no commit
// record, no checksum.
func (l *Log) Flush() {
	sp := telemetry.SpanBegin(telemetry.PhaseRawlFlush, uint64(l.base), 0)
	l.mem.Fence()
	sp.End()
}

// TruncateAll drops every record in the log (the paper's log_truncate),
// durably, with a single-variable update of the packed head state.
// Producer-side call.
func (l *Log) TruncateAll() {
	sp := telemetry.SpanBegin(telemetry.PhaseRawlTrunc, uint64(l.base), 0)
	defer sp.End()
	pmem.StoreDurable(l.mem, l.base.Add(hdrHeadOff), packHead(l.tail, l.phase, l.tornPos))
	telTruncations.Inc()
	if telemetry.TraceEnabled() {
		telemetry.Emit(telemetry.EvLogTruncate, uint64(l.base), 0, 0)
	}
}

// TruncateTo consumes every record up to and including the one whose
// Append returned pos. The consumer passes its own Memory, keeping the
// producer's write-combining buffer out of the consumer's fence.
func (l *Log) TruncateTo(mem pmem.Memory, pos Pos) {
	sp := telemetry.SpanBegin(telemetry.PhaseRawlTrunc, uint64(l.base), 0)
	defer sp.End()
	pmem.StoreDurable(mem, l.base.Add(hdrHeadOff), packHead(pos.idx, pos.phase, l.tornPos))
	telTruncations.Inc()
	if telemetry.TraceEnabled() {
		telemetry.Emit(telemetry.EvLogTruncate, uint64(l.base), 0, 0)
	}
}

// TruncateAllDeferred is TruncateAll without the trailing fence: the head
// update sits in the producer's write-combining buffer until the caller's
// next Fence. Group commit truncates every member log this way and covers
// all the updates with one fence. Until that fence, a crash simply
// re-replays the still-present records, which is idempotent.
func (l *Log) TruncateAllDeferred() {
	l.mem.WTStoreU64(l.base.Add(hdrHeadOff), packHead(l.tail, l.phase, l.tornPos))
	telTruncations.Inc()
	if telemetry.TraceEnabled() {
		telemetry.Emit(telemetry.EvLogTruncate, uint64(l.base), 0, 0)
	}
}

// TruncateToDeferred is TruncateTo without the trailing fence. The caller
// must fence mem before the producer's freed space is reused — the async
// truncation manager batches several of these under one covering fence.
func (l *Log) TruncateToDeferred(mem pmem.Memory, pos Pos) {
	mem.WTStoreU64(l.base.Add(hdrHeadOff), packHead(pos.idx, pos.phase, l.tornPos))
	telTruncations.Inc()
	if telemetry.TraceEnabled() {
		telemetry.Emit(telemetry.EvLogTruncate, uint64(l.base), 0, 0)
	}
}

// TornPos reports the current torn-bit position.
func (l *Log) TornPos() uint { return l.tornPos }

// Rotate moves the torn bit to the next bit position, spreading wear over
// all 64 bits of each log word (§4.5). The log must be empty (truncated);
// the buffer is re-zeroed so the new position scans correctly, and the
// position change commits with a single durable head update.
func (l *Log) Rotate() error {
	if l.used() != 0 {
		return errors.New("rawl: rotate requires an empty log")
	}
	for i := int64(0); i < l.n; i++ {
		l.mem.WTStoreU64(l.wordAddr(i), 0)
	}
	l.mem.Fence()
	l.tornPos = (l.tornPos + 63) & 63 // 63 -> 62 -> ... -> 0 -> 63
	l.tail = 0
	l.phase = 1
	pmem.StoreDurable(l.mem, l.base.Add(hdrHeadOff), packHead(0, 1, l.tornPos))
	return nil
}

// recover scans the buffer from the durable head, accepting words whose
// torn bit is in sequence, and parses complete records from the accepted
// prefix. The producer tail resumes after the last complete record.
func (l *Log) recover() [][]uint64 {
	head, phase, tornPos := l.loadHead()
	l.tail, l.phase, l.tornPos = head, phase, tornPos

	// Phase 1: torn-bit scan. Valid words run from head while each torn
	// bit matches the current pass, flipping expectation on wraparound.
	// A mismatch is either the end of the written region or a missing
	// write inside an append; both end the valid prefix.
	var valid []uint64
	idx, ph := head, phase
	for int64(len(valid)) < l.n-1 {
		payload, torn := unpackWord(l.mem.LoadU64(l.wordAddr(idx)), tornPos)
		if torn != ph {
			break
		}
		valid = append(valid, payload)
		idx++
		if idx == l.n {
			idx = 0
			ph ^= 1
		}
	}

	// Phase 2: parse records from the 63-bit payload stream. Records
	// start at log-word boundaries; a zero or unmagical header ends
	// parsing (padding or never-written space).
	var recs [][]uint64
	r := bitReader{words: valid}
	for {
		startWord := r.word
		hdr, ok := r.read64()
		if !ok || hdr>>56 != recMagic {
			break
		}
		k := int64(uint32(hdr))
		if k == 0 || recordWords(k) > l.n-1 {
			break
		}
		rec := make([]uint64, 0, k)
		complete := true
		for i := int64(0); i < k; i++ {
			w, ok := r.read64()
			if !ok {
				complete = false
				break
			}
			rec = append(rec, w)
		}
		if !complete {
			break
		}
		r.alignWord()
		recs = append(recs, rec)
		// Track the producer resume point: just past this record.
		advance := r.word - startWord
		l.tail += advance
		for l.tail >= l.n {
			l.tail -= l.n
			l.phase ^= 1
		}
	}
	return recs
}

// bitReader reads 64-bit values from a stream of 63-bit payload words.
type bitReader struct {
	words []uint64
	word  int64 // next word index
	acc   uint64
	accN  uint
}

func (r *bitReader) read64() (uint64, bool) {
	v := r.acc
	got := r.accN
	r.acc, r.accN = 0, 0
	for {
		if got >= 64 {
			return v, true
		}
		if r.word >= int64(len(r.words)) {
			return 0, false
		}
		w := r.words[r.word] // low 63 bits are payload
		r.word++
		v |= w << got
		if need := 64 - got; 63 >= need {
			r.acc = w >> need
			r.accN = 63 - need
			return v, true
		}
		got += 63
	}
}

// alignWord skips to the next log-word boundary (records are padded).
func (r *bitReader) alignWord() {
	r.acc, r.accN = 0, 0
}
