package rawl

import (
	"errors"
	"fmt"

	"repro/internal/pmem"
)

// BaseLog is the conventional log design that the tornbit RAWL is compared
// against in Table 6 of the paper: every record is written as whole 64-bit
// words, then made durable with "two long-latency fences" — one to
// complete the record's data, one to complete a commit record written
// after it. The commit record carries a sequence number so recovery can
// tell a committed record from stale bytes of a previous pass.
//
// The torn-bit log trades per-word bit manipulation for one of these two
// fences; for small records the fence dominates and tornbit wins, while
// for large records the bit shifting dominates and the commit record wins
// (Table 6).
type BaseLog struct {
	mem  pmem.Memory
	base pmem.Addr
	n    int64

	tail int64
	seq  uint64
}

const (
	baseMagic   = 0x4d4e424153453031 // "MNBASE01"
	commitMagic = 0xC3
	// base log head state: low 32 bits index, high 32 bits sequence.
)

func packBaseHead(idx int64, seq uint64) uint64 { return uint64(idx) | seq<<32 }

func unpackBaseHead(v uint64) (idx int64, seq uint64) {
	return int64(v & 0xffffffff), v >> 32
}

// CreateBase formats a commit-record log at base with a buffer of words
// 64-bit words.
func CreateBase(mem pmem.Memory, base pmem.Addr, words int64) (*BaseLog, error) {
	if words < MinWords {
		return nil, fmt.Errorf("rawl: capacity %d below minimum %d", words, MinWords)
	}
	l := &BaseLog{mem: mem, base: base, n: words, tail: 0, seq: 1}
	for i := int64(0); i < words; i++ {
		mem.WTStoreU64(l.wordAddr(i), 0)
	}
	mem.WTStoreU64(base.Add(hdrWordsOff), uint64(words))
	mem.WTStoreU64(base.Add(hdrHeadOff), packBaseHead(0, 1))
	mem.Fence()
	mem.WTStoreU64(base.Add(hdrMagicOff), baseMagic)
	mem.Fence()
	return l, nil
}

// OpenBase attaches to an existing commit-record log and recovers the
// committed records.
func OpenBase(mem pmem.Memory, base pmem.Addr) (*BaseLog, [][]uint64, error) {
	if mem.LoadU64(base.Add(hdrMagicOff)) != baseMagic {
		return nil, nil, fmt.Errorf("rawl: no base log at %v", base)
	}
	n := int64(mem.LoadU64(base.Add(hdrWordsOff)))
	if n < MinWords {
		return nil, nil, fmt.Errorf("rawl: corrupt capacity %d", n)
	}
	l := &BaseLog{mem: mem, base: base, n: n}
	recs := l.recover()
	return l, recs, nil
}

func (l *BaseLog) wordAddr(i int64) pmem.Addr { return l.base.Add(hdrSize + i*8) }

func (l *BaseLog) loadHead() (int64, uint64) {
	return unpackBaseHead(l.mem.LoadU64(l.base.Add(hdrHeadOff)))
}

func (l *BaseLog) used() int64 {
	head, _ := l.loadHead()
	u := l.tail - head
	if u < 0 {
		u += l.n
	}
	return u
}

// FreeWords returns how many buffer words an append may consume right now.
func (l *BaseLog) FreeWords() int64 { return l.n - 1 - l.used() }

// Append durably appends a record: data words, fence, commit record,
// fence. Unlike the tornbit log there is no separate Flush — the commit
// protocol itself guarantees durability, at the cost of the second fence.
func (l *BaseLog) Append(rec []uint64) error {
	k := int64(len(rec))
	if k == 0 {
		return errors.New("rawl: empty record")
	}
	need := k + 2 // header word + payload + commit word
	if need > l.n-1 {
		return fmt.Errorf("rawl: record of %d words exceeds log capacity", k)
	}
	if need > l.FreeWords() {
		return ErrLogFull
	}
	l.emit(uint64(recMagic)<<56 | uint64(k))
	for _, w := range rec {
		l.emit(w)
	}
	l.mem.Fence() // data complete before the commit record
	l.emit(uint64(commitMagic)<<56 | l.seq&((1<<56)-1))
	l.mem.Fence() // commit record durable
	l.seq++
	return nil
}

func (l *BaseLog) emit(w uint64) {
	l.mem.WTStoreU64(l.wordAddr(l.tail), w)
	l.tail++
	if l.tail == l.n {
		l.tail = 0
	}
}

// TruncateAll drops every record in the log.
func (l *BaseLog) TruncateAll() {
	pmem.StoreDurable(l.mem, l.base.Add(hdrHeadOff), packBaseHead(l.tail, l.seq))
}

func (l *BaseLog) recover() [][]uint64 {
	head, seq := l.loadHead()
	l.tail, l.seq = head, seq
	var recs [][]uint64
	idx := head
	read := func() uint64 {
		w := l.mem.LoadU64(l.wordAddr(idx))
		idx++
		if idx == l.n {
			idx = 0
		}
		return w
	}
	consumed := int64(0)
	for consumed < l.n-1 {
		hdr := read()
		if hdr>>56 != recMagic {
			break
		}
		k := int64(uint32(hdr))
		if k == 0 || k+2 > l.n-1-consumed {
			break
		}
		consumed += k + 2
		rec := make([]uint64, 0, k)
		for i := int64(0); i < k; i++ {
			rec = append(rec, read())
		}
		commit := read()
		if commit>>56 != commitMagic || commit&((1<<56)-1) != l.seq&((1<<56)-1) {
			break
		}
		recs = append(recs, rec)
		l.seq++
		l.tail = idx
	}
	return recs
}
