package rawl

import (
	"fmt"
	"testing"

	"repro/internal/crashpoint"
	"repro/internal/pmem"
	"repro/internal/region"
	"repro/internal/scm"
)

// rawlRecord is the deterministic payload of record i.
func rawlRecord(i int) []uint64 {
	rec := make([]uint64, 3+i%4)
	for j := range rec {
		rec[j] = uint64(i)*1000003 + uint64(j)*31 + 7
	}
	return rec
}

// TestCrashPointsRAWL explores every crash point of a create/append/flush/
// truncate workload and checks the log's recovery contract: recovered
// records are exactly the acknowledged live window (give or take the one
// in-flight operation), byte for byte — in particular, no torn record ever
// decodes as valid.
func TestCrashPointsRAWL(t *testing.T) {
	const (
		logWords = 256
		records  = 6
		truncAt  = 2 // TruncateAll after this record is flushed
	)
	workload := func() (*crashpoint.Run, error) {
		dev, err := scm.Open(scm.Config{Size: 2 << 20, Mode: scm.DelayOff})
		if err != nil {
			return nil, err
		}
		dir := t.TempDir()
		// Acknowledged state, updated by Body as operations complete:
		// the live record window is [lo, hi); truncStarted marks an
		// in-flight TruncateAll (its head update may or may not have
		// landed).
		lo, hi := 0, 0
		truncStarted := false

		return &crashpoint.Run{
			Dev: dev,
			Body: func() error {
				rt, err := region.Open(dev, region.Config{Dir: dir, StaticSize: 64 << 10})
				if err != nil {
					return err
				}
				ptr, _, err := rt.Static("rawl.crash", 8)
				if err != nil {
					return err
				}
				mem := rt.NewMemory()
				base, err := rt.PMapAt(ptr, Size(logWords), 0)
				if err != nil {
					return err
				}
				log, err := Create(mem, base, logWords)
				if err != nil {
					return err
				}
				for i := 0; i < records; i++ {
					if _, err := log.Append(rawlRecord(i)); err != nil {
						return err
					}
					log.Flush()
					hi = i + 1
					if i == truncAt {
						truncStarted = true
						log.TruncateAll()
						lo = hi
					}
				}
				return nil
			},
			Check: func() error {
				rt, err := region.Open(dev, region.Config{Dir: dir, StaticSize: 64 << 10})
				if err != nil {
					return fmt.Errorf("region tables not remappable: %w", err)
				}
				defer rt.Close()
				ptr, _, err := rt.Static("rawl.crash", 8)
				if err != nil {
					return err
				}
				mem := rt.NewMemory()
				base := pmem.Addr(mem.LoadU64(ptr))
				if base == pmem.Nil {
					if hi > 0 {
						return fmt.Errorf("log region lost after %d acked appends", hi)
					}
					return nil
				}
				_, recs, err := Open(mem, base)
				if err != nil {
					// The region landed but Create's magic did not: only
					// legal before anything was acknowledged.
					if hi > 0 {
						return fmt.Errorf("log unopenable after %d acked appends: %w", hi, err)
					}
					return nil
				}
				// The recovered window may run one op ahead of the acked
				// state: an in-flight append that fully landed, or an
				// in-flight truncation whose head update landed.
				los := []int{lo}
				if truncStarted && lo == 0 {
					los = append(los, truncAt+1)
				}
				his := []int{hi, hi + 1}
				for _, l := range los {
					for _, h := range his {
						if h < l || h-l != len(recs) || h > records {
							continue
						}
						ok := true
						for i, rec := range recs {
							want := rawlRecord(l + i)
							if len(rec) != len(want) {
								ok = false
								break
							}
							for j := range rec {
								if rec[j] != want[j] {
									ok = false
									break
								}
							}
							if !ok {
								break
							}
						}
						if ok {
							return nil
						}
					}
				}
				return fmt.Errorf("recovered %d records do not match any legal window (acked [%d,%d), trunc started %v)",
					len(recs), lo, hi, truncStarted)
			},
		}, nil
	}

	rep, err := crashpoint.Explore(workload, crashpoint.Options{
		Schedule: crashpoint.TestSchedule(testing.Short(), 24),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		for _, f := range rep.Failures {
			t.Errorf("%v", f)
		}
		t.Fatalf("RAWL recovery oracle failed at %d of %d crash points (%s)",
			len(rep.Failures), rep.Points, rep)
	}
	t.Logf("rawl: %s", rep)
}
