package rawl

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/pmem"
	"repro/internal/region"
	"repro/internal/scm"
)

// testEnv returns a runtime, a memory view, and the base address of a
// fresh persistent region big enough for a log of `words` words.
func testEnv(t *testing.T, words int64) (*scm.Device, *region.Runtime, *region.Mem, pmem.Addr) {
	t.Helper()
	dev, err := scm.Open(scm.Config{Size: 8 << 20, Mode: scm.DelayOff})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := region.Open(dev, region.Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := rt.PMap(Size(words), 0)
	if err != nil {
		t.Fatal(err)
	}
	return dev, rt, rt.NewMemory(), addr
}

func TestCreateOpenEmpty(t *testing.T) {
	_, _, mem, base := testEnv(t, 128)
	if _, err := Create(mem, base, 128); err != nil {
		t.Fatal(err)
	}
	l, recs, err := Open(mem, base)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh log recovered %d records", len(recs))
	}
	if l.Capacity() != 128 {
		t.Fatalf("capacity = %d", l.Capacity())
	}
}

func TestOpenGarbageFails(t *testing.T) {
	_, _, mem, base := testEnv(t, 128)
	if _, _, err := Open(mem, base); err == nil {
		t.Fatal("expected error opening unformatted memory")
	}
}

func TestAppendFlushRecover(t *testing.T) {
	dev, _, mem, base := testEnv(t, 256)
	l, err := Create(mem, base, 256)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]uint64{
		{1, 2, 3},
		{0xffffffffffffffff}, // all-ones payload exercises the torn bit path
		{42, 0, 7, 9, 11},
	}
	for _, rec := range want {
		if _, err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	l.Flush()
	dev.Crash(scm.DropAll{})

	_, recs, err := Open(mem, base)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(recs), len(want))
	}
	for i := range want {
		if len(recs[i]) != len(want[i]) {
			t.Fatalf("record %d has %d words, want %d", i, len(recs[i]), len(want[i]))
		}
		for j := range want[i] {
			if recs[i][j] != want[i][j] {
				t.Fatalf("record %d word %d = %#x, want %#x", i, j, recs[i][j], want[i][j])
			}
		}
	}
}

func TestUnflushedAppendMayBeLost(t *testing.T) {
	dev, _, mem, base := testEnv(t, 256)
	l, err := Create(mem, base, 256)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]uint64{10, 20, 30}); err != nil {
		t.Fatal(err)
	}
	// No flush: a DropAll crash must lose the append entirely.
	dev.Crash(scm.DropAll{})
	_, recs, err := Open(mem, base)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("unflushed record recovered: %v", recs)
	}
}

func TestPartialAppendDiscardedOnRandomCrash(t *testing.T) {
	// Flush record A, append record B without flushing, crash randomly.
	// Recovery must always return A intact, and either B intact (all its
	// words made it) or no B at all — never a torn B.
	for seed := int64(0); seed < 50; seed++ {
		dev, _, mem, base := testEnv(t, 256)
		l, err := Create(mem, base, 256)
		if err != nil {
			t.Fatal(err)
		}
		a := []uint64{0xa1, 0xa2, 0xa3}
		b := []uint64{0xb1, 0xb2, 0xb3, 0xb4, 0xb5, 0xb6, 0xb7}
		if _, err := l.Append(a); err != nil {
			t.Fatal(err)
		}
		l.Flush()
		if _, err := l.Append(b); err != nil {
			t.Fatal(err)
		}
		dev.Crash(scm.NewRandomPolicy(seed))

		_, recs, err := Open(mem, base)
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) < 1 || len(recs) > 2 {
			t.Fatalf("seed %d: recovered %d records", seed, len(recs))
		}
		if len(recs[0]) != len(a) || recs[0][0] != 0xa1 {
			t.Fatalf("seed %d: record A damaged: %v", seed, recs[0])
		}
		if len(recs) == 2 {
			if len(recs[1]) != len(b) {
				t.Fatalf("seed %d: torn record B: %v", seed, recs[1])
			}
			for j := range b {
				if recs[1][j] != b[j] {
					t.Fatalf("seed %d: record B corrupt at %d", seed, j)
				}
			}
		}
	}
}

func TestTornBitDetectsInjectedBitFlips(t *testing.T) {
	// §6.2: "we tested the torn-bit feature of the RAWL by injecting bit
	// flips into the log before a crash". Flipping a torn bit inside a
	// flushed record must cause recovery to discard that record and
	// everything after it, never to return corrupt data as valid.
	dev, _, mem, base := testEnv(t, 256)
	l, err := Create(mem, base, 256)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]uint64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]uint64{4, 5, 6}); err != nil {
		t.Fatal(err)
	}
	l.Flush()

	// Record 1 occupies recordWords(3) = ceil(256/63) = 5 words.
	// Flip the torn bit of the first word of record 2 (word index 5).
	word5 := base.Add(hdrSize + 5*8)
	v := mem.LoadU64(word5)
	mem.WTStoreU64(word5, v^(1<<63))
	mem.Fence()
	dev.Crash(scm.DropAll{})

	_, recs, err := Open(mem, base)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("recovered %d records after bit flip, want 1", len(recs))
	}
	if recs[0][0] != 1 || recs[0][1] != 2 || recs[0][2] != 3 {
		t.Fatalf("record 1 corrupted: %v", recs[0])
	}
}

func TestTruncateAllDropsRecords(t *testing.T) {
	dev, _, mem, base := testEnv(t, 256)
	l, err := Create(mem, base, 256)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]uint64{9, 9}); err != nil {
		t.Fatal(err)
	}
	l.Flush()
	l.TruncateAll()
	dev.Crash(scm.DropAll{})
	_, recs, err := Open(mem, base)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("truncated log recovered %d records", len(recs))
	}
}

func TestTruncateToConsumesPrefix(t *testing.T) {
	dev, rt, mem, base := testEnv(t, 256)
	l, err := Create(mem, base, 256)
	if err != nil {
		t.Fatal(err)
	}
	posA, err := l.Append([]uint64{0xa})
	if err != nil {
		t.Fatal(err)
	}
	if _, err = l.Append([]uint64{0xb}); err != nil {
		t.Fatal(err)
	}
	l.Flush()
	consumerMem := rt.NewMemory()
	l.TruncateTo(consumerMem, posA)
	dev.Crash(scm.DropAll{})
	_, recs, err := Open(mem, base)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0][0] != 0xb {
		t.Fatalf("recovered %v, want just record B", recs)
	}
}

func TestWrapAroundManyPasses(t *testing.T) {
	// Capacity 64 words; records of 5 payload words consume
	// recordWords(5) = ceil(384/63) = 7 words. Append/flush/truncate
	// hundreds of times so the log wraps and the torn bit reverses many
	// times, verifying phase bookkeeping on both sides.
	dev, _, mem, base := testEnv(t, 64)
	l, err := Create(mem, base, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		rec := []uint64{uint64(i), uint64(i) * 3, uint64(i) * 7, ^uint64(i), uint64(i) << 40}
		if _, err := l.Append(rec); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		l.Flush()
		if i%3 == 2 {
			// Periodically crash + reopen to verify recovery at
			// arbitrary wrap positions.
			dev.Crash(scm.DropAll{})
			var recs [][]uint64
			l, recs, err = Open(mem, base)
			if err != nil {
				t.Fatal(err)
			}
			want := 3
			if i == 2 {
				want = 3
			}
			if len(recs) != want {
				t.Fatalf("iter %d: recovered %d records, want %d", i, len(recs), want)
			}
			last := recs[len(recs)-1]
			if last[0] != uint64(i) {
				t.Fatalf("iter %d: last record starts with %d", i, last[0])
			}
			l.TruncateAll()
		}
	}
}

func TestLogFullReported(t *testing.T) {
	_, _, mem, base := testEnv(t, 32)
	l, err := Create(mem, base, 32)
	if err != nil {
		t.Fatal(err)
	}
	var lastErr error
	for i := 0; i < 100; i++ {
		if _, lastErr = l.Append([]uint64{1, 2, 3}); lastErr != nil {
			break
		}
	}
	if lastErr != ErrLogFull {
		t.Fatalf("expected ErrLogFull, got %v", lastErr)
	}
	l.Flush()
	l.TruncateAll()
	if _, err := l.Append([]uint64{1, 2, 3}); err != nil {
		t.Fatalf("append after truncate: %v", err)
	}
}

func TestOversizeRecordRejected(t *testing.T) {
	_, _, mem, base := testEnv(t, 32)
	l, err := Create(mem, base, 32)
	if err != nil {
		t.Fatal(err)
	}
	big := make([]uint64, 64)
	if _, err := l.Append(big); err == nil || err == ErrLogFull {
		t.Fatalf("oversize append: %v", err)
	}
}

func TestQuickRoundTrip(t *testing.T) {
	// Property: any batch of records appended and flushed is recovered
	// exactly after a DropAll crash.
	dev, _, mem, base := testEnv(t, 1024)
	f := func(seed int64, sizes []uint8) bool {
		l, err := Create(mem, base, 1024)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		var want [][]uint64
		for _, s := range sizes {
			k := int(s)%16 + 1
			rec := make([]uint64, k)
			for i := range rec {
				rec[i] = rng.Uint64()
			}
			if _, err := l.Append(rec); err != nil {
				break // full: stop appending, what's in must recover
			}
			want = append(want, rec)
		}
		l.Flush()
		dev.Crash(scm.DropAll{})
		_, recs, err := Open(mem, base)
		if err != nil || len(recs) != len(want) {
			return false
		}
		for i := range want {
			if len(recs[i]) != len(want[i]) {
				return false
			}
			for j := range want[i] {
				if recs[i][j] != want[i][j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRecordWordsMath(t *testing.T) {
	cases := []struct{ k, want int64 }{
		{1, 3},   // 128 bits -> 3 words of 63 bits
		{3, 5},   // 256 bits -> ceil(256/63)=5
		{62, 64}, // 63*64 bits = 4032 -> 64
		{63, 66}, // 4096 bits -> ceil(4096/63) = 66
	}
	for _, c := range cases {
		if got := recordWords(c.k); got != c.want {
			t.Errorf("recordWords(%d) = %d, want %d", c.k, got, c.want)
		}
	}
}

func TestBaseLogAppendRecover(t *testing.T) {
	dev, _, mem, base := testEnv(t, 256)
	l, err := CreateBase(mem, base, 256)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]uint64{{1, 2}, {3}, {4, 5, 6}}
	for _, rec := range want {
		if err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	dev.Crash(scm.DropAll{})
	_, recs, err := OpenBase(mem, base)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(recs), len(want))
	}
	for i := range want {
		for j := range want[i] {
			if recs[i][j] != want[i][j] {
				t.Fatalf("record %d word %d = %d", i, j, recs[i][j])
			}
		}
	}
}

func TestBaseLogSeqRejectsStaleCommit(t *testing.T) {
	// Fill a pass, truncate, append one record. Recovery must return
	// only the new record even though stale committed bytes from the
	// previous pass still follow it in the buffer.
	dev, _, mem, base := testEnv(t, 64)
	l, err := CreateBase(mem, base, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		if err := l.Append([]uint64{uint64(i), uint64(i)}); err == ErrLogFull {
			break
		} else if err != nil {
			t.Fatal(err)
		}
	}
	l.TruncateAll()
	if err := l.Append([]uint64{0xfeed}); err != nil {
		t.Fatal(err)
	}
	dev.Crash(scm.DropAll{})
	_, recs, err := OpenBase(mem, base)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0][0] != 0xfeed {
		t.Fatalf("recovered %v, want one record 0xfeed", recs)
	}
}

func TestBaseLogWrapAround(t *testing.T) {
	dev, _, mem, base := testEnv(t, 64)
	l, err := CreateBase(mem, base, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		if err := l.Append([]uint64{uint64(i)}); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if i%4 == 3 {
			dev.Crash(scm.DropAll{})
			var recs [][]uint64
			l, recs, err = OpenBase(mem, base)
			if err != nil {
				t.Fatal(err)
			}
			if len(recs) != 4 {
				t.Fatalf("iter %d: recovered %d records", i, len(recs))
			}
			l.TruncateAll()
		}
	}
}

func TestMaxRecordWordsFits(t *testing.T) {
	_, _, mem, base := testEnv(t, 128)
	l, err := Create(mem, base, 128)
	if err != nil {
		t.Fatal(err)
	}
	k := l.MaxRecordWords()
	if k <= 0 {
		t.Fatalf("MaxRecordWords = %d", k)
	}
	if _, err := l.Append(make([]uint64, k)); err != nil {
		t.Fatalf("max record rejected: %v", err)
	}
}

func TestRotateMovesTornBit(t *testing.T) {
	// §4.5: the torn bit may periodically be shifted to spread wear.
	// Rotate through several positions, verifying appends and recovery
	// keep working at each.
	dev, _, mem, base := testEnv(t, 128)
	l, err := Create(mem, base, 128)
	if err != nil {
		t.Fatal(err)
	}
	if l.TornPos() != 63 {
		t.Fatalf("initial torn pos = %d", l.TornPos())
	}
	for round := 0; round < 5; round++ {
		want := []uint64{uint64(round) * 11, ^uint64(round), 0xabcdef}
		if _, err := l.Append(want); err != nil {
			t.Fatal(err)
		}
		l.Flush()
		dev.Crash(scm.DropAll{})
		var recs [][]uint64
		l, recs, err = Open(mem, base)
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != 1 || recs[0][0] != want[0] || recs[0][2] != 0xabcdef {
			t.Fatalf("round %d: recovered %v", round, recs)
		}
		l.TruncateAll()
		prev := l.TornPos()
		if err := l.Rotate(); err != nil {
			t.Fatal(err)
		}
		if l.TornPos() == prev {
			t.Fatalf("round %d: torn pos did not move", round)
		}
		// Rotation itself must survive a crash.
		dev.Crash(scm.DropAll{})
		pos := l.TornPos()
		l, _, err = Open(mem, base)
		if err != nil {
			t.Fatal(err)
		}
		if l.TornPos() != pos {
			t.Fatalf("round %d: torn pos %d lost in crash (got %d)", round, pos, l.TornPos())
		}
	}
}

func TestRotateRequiresEmptyLog(t *testing.T) {
	_, _, mem, base := testEnv(t, 64)
	l, err := Create(mem, base, 64)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]uint64{1}); err != nil {
		t.Fatal(err)
	}
	l.Flush()
	if err := l.Rotate(); err == nil {
		t.Fatal("rotate of non-empty log must fail")
	}
}

func TestQuickPackWordRoundTrip(t *testing.T) {
	f := func(payload uint64, torn bool, posRaw uint8) bool {
		payload &= (1 << 63) - 1
		pos := uint(posRaw) % 64
		var tb uint64
		if torn {
			tb = 1
		}
		p, gotTorn := unpackWord(packWord(payload, tb, pos), pos)
		return p == payload && gotTorn == tb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
