package rawl

import (
	"testing"

	"repro/internal/pmem"
)

// fuzzMem is a minimal in-process pmem.Memory over a flat byte array, with
// real write-combining semantics: WTStoreU64 buffers the word until Fence.
// crashApply persists an arbitrary subset of the unfenced words, modeling
// the unordered durability of streaming writes at a power failure.
type fuzzMem struct {
	base    pmem.Addr
	data    []uint64
	pending []struct {
		idx int64
		v   uint64
	}
}

func newFuzzMem(base pmem.Addr, size int64) *fuzzMem {
	return &fuzzMem{base: base, data: make([]uint64, (size+7)/8)}
}

func (m *fuzzMem) idx(a pmem.Addr) int64 {
	i := a.Sub(m.base)
	if i < 0 || i/8 >= int64(len(m.data)) || i%8 != 0 {
		panic("fuzzMem: access outside the log region")
	}
	return i / 8
}

func (m *fuzzMem) LoadU64(a pmem.Addr) uint64     { return m.data[m.idx(a)] }
func (m *fuzzMem) StoreU64(a pmem.Addr, v uint64) { m.data[m.idx(a)] = v }
func (m *fuzzMem) Flush(pmem.Addr)                {}
func (m *fuzzMem) FlushRange(pmem.Addr, int64)    {}
func (m *fuzzMem) Load([]byte, pmem.Addr)         { panic("fuzzMem: byte access unused") }
func (m *fuzzMem) Store(pmem.Addr, []byte)        { panic("fuzzMem: byte access unused") }
func (m *fuzzMem) WTStore(pmem.Addr, []byte)      { panic("fuzzMem: byte access unused") }

func (m *fuzzMem) WTStoreU64(a pmem.Addr, v uint64) {
	m.pending = append(m.pending, struct {
		idx int64
		v   uint64
	}{m.idx(a), v})
}

func (m *fuzzMem) Fence() {
	for _, p := range m.pending {
		m.data[p.idx] = p.v
	}
	m.pending = m.pending[:0]
}

// crashApply persists pending word i iff bit i of keep is set (bit index
// modulo 64), then drops the rest — a power failure mid-stream.
func (m *fuzzMem) crashApply(keep uint64) {
	for i, p := range m.pending {
		if keep>>(uint(i)%64)&1 == 1 {
			m.data[p.idx] = p.v
		}
	}
	m.pending = m.pending[:0]
}

// fuzzRecords derives a deterministic record sequence from seed.
func fuzzRecords(nrec int, seed uint64) [][]uint64 {
	next := func() uint64 {
		seed += 0x9E3779B97F4A7C15
		z := seed
		z = (z ^ z>>30) * 0xBF58476D1CE4E5B9
		z = (z ^ z>>27) * 0x94D049BB133111EB
		return z ^ z>>31
	}
	recs := make([][]uint64, nrec)
	for i := range recs {
		rec := make([]uint64, 1+int(next()%6))
		for j := range rec {
			rec[j] = next()
		}
		recs[i] = rec
	}
	return recs
}

func sameRecords(a, b [][]uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// FuzzRAWLRecover attacks the tornbit recovery scan from two sides. First
// a torn append: flushed records followed by one unflushed append of which
// an arbitrary subset of streamed words persists — recovery must return
// exactly the flushed records, plus the last append only if it is complete
// and byte-identical (a torn record must never decode as valid). Then
// arbitrary corruption of the head word and buffer: Open must return
// records or an error, never panic, and never claim more words than the
// buffer holds.
func FuzzRAWLRecover(f *testing.F) {
	f.Add(uint8(4), uint8(3), uint64(12345), uint64(0xffffffffffffffff), []byte{})
	f.Add(uint8(0), uint8(1), uint64(1), uint64(0), []byte{})
	f.Add(uint8(7), uint8(5), uint64(99), uint64(0xaaaaaaaaaaaaaaaa), []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 0})
	f.Add(uint8(2), uint8(2), uint64(7), uint64(1), []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, capSel, nrec uint8, seed, keep uint64, corrupt []byte) {
		const base = pmem.Addr(1 << 20)
		n := int64(MinWords + int(capSel)%248)
		mem := newFuzzMem(base, Size(n))
		l, err := Create(mem, base, n)
		if err != nil {
			t.Fatal(err)
		}

		recs := fuzzRecords(1+int(nrec)%5, seed)
		var flushed [][]uint64
		for _, rec := range recs[:len(recs)-1] {
			if _, err := l.Append(rec); err != nil {
				break // log full on a tiny capacity: fuzz the shorter prefix
			}
			l.Flush()
			flushed = append(flushed, rec)
		}
		last := recs[len(recs)-1]
		lastAppended := false
		if len(flushed) == len(recs)-1 {
			_, err := l.Append(last)
			lastAppended = err == nil
		}
		mem.crashApply(keep) // power failure: subset of the unflushed stream

		_, got, err := Open(mem, base)
		if err != nil {
			t.Fatalf("recovery failed on an uncorrupted log: %v", err)
		}
		ok := sameRecords(got, flushed)
		if !ok && lastAppended {
			ok = sameRecords(got, append(append([][]uint64{}, flushed...), last))
		}
		if !ok {
			t.Fatalf("recovered %d records; want the %d flushed (+ the torn append only if intact)",
				len(got), len(flushed))
		}

		// Part two: arbitrary corruption of head and buffer words. Open
		// must degrade cleanly, whatever the bytes say.
		for len(corrupt) >= 10 {
			off := int64(uint16(corrupt[0]) | uint16(corrupt[1])<<8)
			var v uint64
			for i := 0; i < 8; i++ {
				v |= uint64(corrupt[2+i]) << (8 * i)
			}
			corrupt = corrupt[10:]
			if off%(n+1) == 0 {
				mem.data[hdrHeadOff/8] = v
			} else {
				mem.data[hdrSize/8+off%(n+1)-1] = v
			}
		}
		_, got, err = Open(mem, base)
		if err != nil {
			return // a clean rejection is a correct outcome
		}
		total := int64(0)
		for _, rec := range got {
			total += recordWords(int64(len(rec)))
		}
		if total > n-1 {
			t.Fatalf("recovered %d record words from a %d-word buffer", total, n)
		}
	})
}
