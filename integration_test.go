package mnemosyne_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	mnemosyne "repro"
	"repro/internal/mtm"
)

// TestFullStackSoak drives the whole stack the way a long-lived
// application would: several goroutines mutate independent persistent
// structures through durable transactions, the "machine" crashes with a
// random policy between rounds, everything reincarnates, invariants are
// checked, and a garbage collection closes each round. Any lost committed
// update, torn structure or allocator inconsistency fails the test.
func TestFullStackSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	dir := t.TempDir()
	cfg := mnemosyne.Config{Dir: dir, DeviceSize: 256 << 20, HeapSize: 128 << 20}
	pm, err := mnemosyne.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dev := pm.Device()

	treeRoot, _, err := pm.Static("soak.tree", 8)
	if err != nil {
		t.Fatal(err)
	}
	avlRoot, _, err := pm.Static("soak.avl", 8)
	if err != nil {
		t.Fatal(err)
	}
	htRoot, _, err := pm.Static("soak.ht", 8)
	if err != nil {
		t.Fatal(err)
	}
	setup, err := pm.NewThread()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mnemosyne.CreateHashTable(setup, htRoot, 256); err != nil {
		t.Fatal(err)
	}

	// Models of what must be durable.
	treeModel := map[uint64]byte{}
	avlModel := map[string]byte{}
	htModel := map[uint64]byte{}
	var modelMu sync.Mutex

	const rounds = 6
	for round := 0; round < rounds; round++ {
		var wg sync.WaitGroup
		errs := make(chan error, 3)

		wg.Add(3)
		go func() { // B+ tree worker
			defer wg.Done()
			th, err := pm.NewThread()
			if err != nil {
				errs <- err
				return
			}
			tree := mnemosyne.NewBPTree(treeRoot)
			rng := rand.New(rand.NewSource(int64(round)*10 + 1))
			for i := 0; i < 300; i++ {
				k := uint64(rng.Intn(500))
				v := byte(rng.Intn(256))
				if err := th.Atomic(func(tx *mnemosyne.Tx) error {
					return tree.Put(tx, k, []byte{v})
				}); err != nil {
					errs <- err
					return
				}
				modelMu.Lock()
				treeModel[k] = v
				modelMu.Unlock()
			}
		}()
		go func() { // AVL worker
			defer wg.Done()
			th, err := pm.NewThread()
			if err != nil {
				errs <- err
				return
			}
			avl := mnemosyne.NewAVL(avlRoot)
			rng := rand.New(rand.NewSource(int64(round)*10 + 2))
			for i := 0; i < 300; i++ {
				k := fmt.Sprintf("key-%03d", rng.Intn(400))
				v := byte(rng.Intn(256))
				if err := th.Atomic(func(tx *mnemosyne.Tx) error {
					return avl.Put(tx, []byte(k), []byte{v})
				}); err != nil {
					errs <- err
					return
				}
				modelMu.Lock()
				avlModel[k] = v
				modelMu.Unlock()
			}
		}()
		go func() { // hash table worker, with deletes
			defer wg.Done()
			th, err := pm.NewThread()
			if err != nil {
				errs <- err
				return
			}
			rng := rand.New(rand.NewSource(int64(round)*10 + 3))
			for i := 0; i < 300; i++ {
				k := uint64(rng.Intn(300))
				err := th.Atomic(func(tx *mnemosyne.Tx) error {
					ht, err := mnemosyne.OpenHashTable(tx, htRoot)
					if err != nil {
						return err
					}
					if rng.Intn(4) == 0 {
						err := ht.Delete(tx, k)
						if err == mnemosyne.ErrNotFound {
							return nil
						}
						return err
					}
					return ht.Put(tx, k, []byte{byte(i)})
				})
				if err != nil {
					errs <- err
					return
				}
			}
		}()
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}

		// Snapshot the hash table's actual contents as its model (its
		// worker's delete/put interleaving is easier to read back than
		// to mirror).
		snapshotHT(t, pm, htRoot, &htModel)

		// Power failure and reincarnation.
		dev.Crash(mnemosyne.RandomCrash(int64(round) * 977))
		if err := pm.Runtime().Close(); err != nil {
			t.Fatal(err)
		}
		pm, err = mnemosyne.Attach(dev, cfg)
		if err != nil {
			t.Fatalf("round %d: attach: %v", round, err)
		}

		// Verify every committed update and every invariant.
		verify, err := pm.NewThread()
		if err != nil {
			t.Fatal(err)
		}
		tree := mnemosyne.NewBPTree(treeRoot)
		avl := mnemosyne.NewAVL(avlRoot)
		if err := verify.Atomic(func(tx *mnemosyne.Tx) error {
			if err := tree.CheckInvariants(tx); err != nil {
				return err
			}
			if !avl.CheckInvariants(tx) {
				return fmt.Errorf("AVL invariants violated")
			}
			modelMu.Lock()
			defer modelMu.Unlock()
			for k, v := range treeModel {
				got, err := tree.Get(tx, k)
				if err != nil || got[0] != v {
					return fmt.Errorf("tree key %d: %v %v", k, got, err)
				}
			}
			for k, v := range avlModel {
				got, err := avl.Get(tx, []byte(k))
				if err != nil || got[0] != v {
					return fmt.Errorf("avl key %q: %v %v", k, got, err)
				}
			}
			htab, err := mnemosyne.OpenHashTable(tx, htRoot)
			if err != nil {
				return err
			}
			for k, v := range htModel {
				got, err := htab.Get(tx, k)
				if err != nil || got[0] != v {
					return fmt.Errorf("ht key %d: %v %v", k, got, err)
				}
			}
			return nil
		}); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}

		// Garbage collection must find nothing to free (every block is
		// reachable) and must not disturb anything.
		rep, err := pm.Collect()
		if err != nil {
			t.Fatalf("round %d: collect: %v", round, err)
		}
		if rep.Freed != 0 {
			t.Fatalf("round %d: GC freed %d reachable blocks", round, rep.Freed)
		}
	}
}

// snapshotHT reads the hash table's full contents into model.
func snapshotHT(t *testing.T, pm *mnemosyne.PM, root mnemosyne.Addr, model *map[uint64]byte) {
	t.Helper()
	th, err := pm.NewThread()
	if err != nil {
		t.Fatal(err)
	}
	*model = map[uint64]byte{}
	if err := th.Atomic(func(tx *mtm.Tx) error {
		ht, err := mnemosyne.OpenHashTable(tx, root)
		if err != nil {
			return err
		}
		for k := uint64(0); k < 300; k++ {
			if v, err := ht.Get(tx, k); err == nil {
				(*model)[k] = v[0]
			} else if err != mnemosyne.ErrNotFound {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}
