// Sentinel errors of the Mnemosyne stack, consolidated on the root
// package so callers can match them with errors.Is without importing
// internal packages. Wrapped variants compare equal: a context-cancelled
// lease, for example, matches both ErrLeaseTimeout and the context's own
// error.
package mnemosyne

import (
	"repro/internal/kvserve"
	"repro/internal/mtm"
	"repro/internal/pheap"
	"repro/internal/rawl"
)

var (
	// ErrTooManyThreads reports that every per-thread log slot is
	// leased; NewThread fails with it immediately, Lease only when it
	// gives up waiting.
	ErrTooManyThreads = mtm.ErrTooManyThreads
	// ErrLeaseTimeout reports that a thread lease gave up waiting for a
	// free log slot (deadline or cancellation).
	ErrLeaseTimeout = mtm.ErrLeaseTimeout
	// ErrLogFull reports a raw word log without room for the record.
	ErrLogFull = rawl.ErrLogFull
	// ErrOutOfMemory reports persistent-heap exhaustion.
	ErrOutOfMemory = pheap.ErrOutOfMemory
	// ErrDoubleFree reports a pfree of an already-free block.
	ErrDoubleFree = pheap.ErrDoubleFree
	// ErrNoHeap reports an open of a region holding no formatted heap.
	ErrNoHeap = pheap.ErrNoHeap
	// ErrKeyTooLong reports a kvserve key over the protocol limit.
	ErrKeyTooLong = kvserve.ErrKeyTooLong
	// ErrValueTooLong reports a kvserve value over the protocol limit.
	ErrValueTooLong = kvserve.ErrValueTooLong
)
