// Micro-benchmarks of the persistence primitives and core services,
// b.N-scaled: each iteration is one primitive operation under the paper's
// emulation parameters. These substantiate the per-operation costs §6.3
// reports (≈190 ns to instrument and log a word, ≈250 ns per distinct
// cache line flushed at commit, ≈3 µs to persist a small update).
package mnemosyne_test

import (
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	mnemosyne "repro"
	"repro/internal/rawl"
)

func benchPM(b *testing.B) *mnemosyne.PM {
	b.Helper()
	return benchPMConfig(b, mnemosyne.Config{})
}

func benchPMConfig(b *testing.B, cfg mnemosyne.Config) *mnemosyne.PM {
	b.Helper()
	dir, err := os.MkdirTemp("", "mnprim-*")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { os.RemoveAll(dir) })
	cfg.Dir = dir
	cfg.DeviceSize = 256 << 20
	cfg.EmulateLatency = true
	pm, err := mnemosyne.Open(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = pm.Close() })
	return pm
}

// BenchmarkWTStoreFence measures a durable single-variable update: one
// streaming store plus one fence, the cheapest consistent update.
func BenchmarkWTStoreFence(b *testing.B) {
	pm := benchPM(b)
	addr, _, err := pm.Static("prim.var", 8)
	if err != nil {
		b.Fatal(err)
	}
	mem := pm.Memory()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mnemosyne.StoreDurable(mem, addr, uint64(i))
	}
}

// BenchmarkStoreFlush measures a cacheable store plus an explicit line
// flush and fence.
func BenchmarkStoreFlush(b *testing.B) {
	pm := benchPM(b)
	region, err := pm.PMap(1 << 20)
	if err != nil {
		b.Fatal(err)
	}
	mem := pm.Memory()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := region.Add(int64(i%1024) * 64)
		mem.StoreU64(a, uint64(i))
		mem.Flush(a)
		mem.Fence()
	}
}

// BenchmarkTornbitAppend measures one log append + flush (one fence) for
// a 64-byte record.
func BenchmarkTornbitAppend(b *testing.B) {
	pm := benchPM(b)
	log, err := pm.CreateLog("prim.log", 1<<16)
	if err != nil {
		b.Fatal(err)
	}
	rec := make([]uint64, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec[0] = uint64(i)
		if _, err := log.Append(rec); err == rawl.ErrLogFull {
			log.TruncateAll()
			if _, err := log.Append(rec); err != nil {
				b.Fatal(err)
			}
		} else if err != nil {
			b.Fatal(err)
		}
		log.Flush()
	}
	b.SetBytes(64)
}

// BenchmarkTxCommit measures a durable transaction writing w words: log
// flush (one fence) + write-back + per-line flush + truncation.
func BenchmarkTxCommit(b *testing.B) {
	for _, words := range []int{1, 8, 64, 512} {
		b.Run(fmt.Sprintf("%dwords", words), func(b *testing.B) {
			pm := benchPM(b)
			region, err := pm.PMap(1 << 20)
			if err != nil {
				b.Fatal(err)
			}
			th, err := pm.NewThread()
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := th.Atomic(func(tx *mnemosyne.Tx) error {
					for w := 0; w < words; w++ {
						tx.StoreU64(region.Add(int64(w)*8), uint64(i))
					}
					return nil
				}); err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(int64(words) * 8)
		})
	}
}

// BenchmarkGroupCommit measures concurrent small commits with and without
// the group-commit coordinator. Each iteration is one round of 8
// goroutines committing one single-word transaction each; the reported
// fences/commit metric is the device-fence amortization the epoch
// coordinator buys (solo sync commits cost 3 fences apiece).
func BenchmarkGroupCommit(b *testing.B) {
	const workers = 8
	for _, mode := range []struct {
		name  string
		group bool
	}{
		{"solo", false},
		{"group", true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			pm := benchPMConfig(b, mnemosyne.Config{GroupCommit: mode.group})
			addrs := make([]mnemosyne.Addr, workers)
			threads := make([]*mnemosyne.Thread, workers)
			for w := 0; w < workers; w++ {
				a, _, err := pm.Static(fmt.Sprintf("prim.gc.%d", w), 8)
				if err != nil {
					b.Fatal(err)
				}
				addrs[w] = a
				th, err := pm.NewThread()
				if err != nil {
					b.Fatal(err)
				}
				threads[w] = th
			}
			startFences := pm.Device().Snapshot().Fences
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				for w := 0; w < workers; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						_ = threads[w].Atomic(func(tx *mnemosyne.Tx) error {
							tx.StoreU64(addrs[w], tx.LoadU64(addrs[w])+1)
							return nil
						})
					}(w)
				}
				wg.Wait()
			}
			b.StopTimer()
			fences := pm.Device().Snapshot().Fences - startFences
			if n := int64(b.N) * workers; n > 0 {
				b.ReportMetric(float64(fences)/float64(n), "fences/commit")
			}
		})
	}
}

// BenchmarkHybridCommit measures one small durable transaction under
// each commit protocol: redo (3 fences/commit), batched undo (2), and
// hybrid (undo under the threshold). The fences/commit metric is the
// single-writer ordering saving the undo path exists for.
func BenchmarkHybridCommit(b *testing.B) {
	for _, mode := range []string{"redo", "undo", "hybrid"} {
		b.Run(mode, func(b *testing.B) {
			cfg := mnemosyne.Config{}
			if mode != "redo" {
				cfg.CommitMode = mode
			}
			pm := benchPMConfig(b, cfg)
			region, err := pm.PMap(1 << 20)
			if err != nil {
				b.Fatal(err)
			}
			th, err := pm.NewThread()
			if err != nil {
				b.Fatal(err)
			}
			startFences := pm.Device().Snapshot().Fences
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := th.Atomic(func(tx *mnemosyne.Tx) error {
					for w := int64(0); w < 4; w++ {
						tx.StoreU64(region.Add(w*8), uint64(i))
					}
					return nil
				}); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			fences := pm.Device().Snapshot().Fences - startFences
			if b.N > 0 {
				b.ReportMetric(float64(fences)/float64(b.N), "fences/commit")
			}
		})
	}
}

// BenchmarkReadCache measures snapshot-View word reads with and without
// the volatile read-through cache, under an emulated PCM read latency so
// hits have something to skip.
func BenchmarkReadCache(b *testing.B) {
	for _, mode := range []struct {
		name  string
		words int
	}{
		{"off", 0},
		{"on", 1 << 12},
	} {
		b.Run(mode.name, func(b *testing.B) {
			pm := benchPMConfig(b, mnemosyne.Config{
				ReadCacheWords: mode.words,
				ReadLatency:    100 * time.Nanosecond,
			})
			region, err := pm.PMap(1 << 16)
			if err != nil {
				b.Fatal(err)
			}
			// Seed a small hot set.
			th, err := pm.NewThread()
			if err != nil {
				b.Fatal(err)
			}
			const words = 256
			if err := th.Atomic(func(tx *mnemosyne.Tx) error {
				for w := int64(0); w < words; w++ {
					tx.StoreU64(region.Add(w*8), uint64(w))
				}
				return nil
			}); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := pm.View(func(r *mnemosyne.ReadTx) error {
					for w := int64(0); w < words; w++ {
						if got := r.LoadU64(region.Add(w * 8)); got != uint64(w) {
							return fmt.Errorf("word %d = %d", w, got)
						}
					}
					return nil
				}); err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(words * 8)
		})
	}
}

// BenchmarkPMalloc measures allocation+free round trips through the
// persistent heap, including the redo-log fence per operation.
func BenchmarkPMalloc(b *testing.B) {
	for _, size := range []int64{64, 1024, 16384} {
		b.Run(fmt.Sprintf("%dB", size), func(b *testing.B) {
			pm := benchPM(b)
			ptr, _, err := pm.Static("prim.ptr", 8)
			if err != nil {
				b.Fatal(err)
			}
			alloc := pm.Allocator()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := alloc.PMalloc(size, ptr); err != nil {
					b.Fatal(err)
				}
				if err := alloc.PFree(ptr); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTxRead measures transactional read instrumentation (lock
// check, snapshot validation) without any writes.
func BenchmarkTxRead(b *testing.B) {
	pm := benchPM(b)
	region, err := pm.PMap(1 << 20)
	if err != nil {
		b.Fatal(err)
	}
	th, err := pm.NewThread()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := th.Atomic(func(tx *mnemosyne.Tx) error {
			for w := 0; w < 64; w++ {
				_ = tx.LoadU64(region.Add(int64(w) * 8))
			}
			return nil
		}); err != nil {
			b.Fatal(err)
		}
	}
}
