// Micro-benchmarks of the persistence primitives and core services,
// b.N-scaled: each iteration is one primitive operation under the paper's
// emulation parameters. These substantiate the per-operation costs §6.3
// reports (≈190 ns to instrument and log a word, ≈250 ns per distinct
// cache line flushed at commit, ≈3 µs to persist a small update).
package mnemosyne_test

import (
	"fmt"
	"os"
	"testing"

	mnemosyne "repro"
	"repro/internal/rawl"
)

func benchPM(b *testing.B) *mnemosyne.PM {
	b.Helper()
	dir, err := os.MkdirTemp("", "mnprim-*")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { os.RemoveAll(dir) })
	pm, err := mnemosyne.Open(mnemosyne.Config{
		Dir:            dir,
		DeviceSize:     256 << 20,
		EmulateLatency: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = pm.Close() })
	return pm
}

// BenchmarkWTStoreFence measures a durable single-variable update: one
// streaming store plus one fence, the cheapest consistent update.
func BenchmarkWTStoreFence(b *testing.B) {
	pm := benchPM(b)
	addr, _, err := pm.Static("prim.var", 8)
	if err != nil {
		b.Fatal(err)
	}
	mem := pm.Memory()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mnemosyne.StoreDurable(mem, addr, uint64(i))
	}
}

// BenchmarkStoreFlush measures a cacheable store plus an explicit line
// flush and fence.
func BenchmarkStoreFlush(b *testing.B) {
	pm := benchPM(b)
	region, err := pm.PMap(1 << 20)
	if err != nil {
		b.Fatal(err)
	}
	mem := pm.Memory()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := region.Add(int64(i%1024) * 64)
		mem.StoreU64(a, uint64(i))
		mem.Flush(a)
		mem.Fence()
	}
}

// BenchmarkTornbitAppend measures one log append + flush (one fence) for
// a 64-byte record.
func BenchmarkTornbitAppend(b *testing.B) {
	pm := benchPM(b)
	log, err := pm.CreateLog("prim.log", 1<<16)
	if err != nil {
		b.Fatal(err)
	}
	rec := make([]uint64, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec[0] = uint64(i)
		if _, err := log.Append(rec); err == rawl.ErrLogFull {
			log.TruncateAll()
			if _, err := log.Append(rec); err != nil {
				b.Fatal(err)
			}
		} else if err != nil {
			b.Fatal(err)
		}
		log.Flush()
	}
	b.SetBytes(64)
}

// BenchmarkTxCommit measures a durable transaction writing w words: log
// flush (one fence) + write-back + per-line flush + truncation.
func BenchmarkTxCommit(b *testing.B) {
	for _, words := range []int{1, 8, 64, 512} {
		b.Run(fmt.Sprintf("%dwords", words), func(b *testing.B) {
			pm := benchPM(b)
			region, err := pm.PMap(1 << 20)
			if err != nil {
				b.Fatal(err)
			}
			th, err := pm.NewThread()
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := th.Atomic(func(tx *mnemosyne.Tx) error {
					for w := 0; w < words; w++ {
						tx.StoreU64(region.Add(int64(w)*8), uint64(i))
					}
					return nil
				}); err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(int64(words) * 8)
		})
	}
}

// BenchmarkPMalloc measures allocation+free round trips through the
// persistent heap, including the redo-log fence per operation.
func BenchmarkPMalloc(b *testing.B) {
	for _, size := range []int64{64, 1024, 16384} {
		b.Run(fmt.Sprintf("%dB", size), func(b *testing.B) {
			pm := benchPM(b)
			ptr, _, err := pm.Static("prim.ptr", 8)
			if err != nil {
				b.Fatal(err)
			}
			alloc := pm.Allocator()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := alloc.PMalloc(size, ptr); err != nil {
					b.Fatal(err)
				}
				if err := alloc.PFree(ptr); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTxRead measures transactional read instrumentation (lock
// check, snapshot validation) without any writes.
func BenchmarkTxRead(b *testing.B) {
	pm := benchPM(b)
	region, err := pm.PMap(1 << 20)
	if err != nil {
		b.Fatal(err)
	}
	th, err := pm.NewThread()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := th.Atomic(func(tx *mnemosyne.Tx) error {
			for w := 0; w < 64; w++ {
				_ = tx.LoadU64(region.Add(int64(w) * 8))
			}
			return nil
		}); err != nil {
			b.Fatal(err)
		}
	}
}
