package main

import (
	"errors"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/crashpoint"
	"repro/internal/mtm"
	"repro/internal/pheap"
	"repro/internal/pmem"
	"repro/internal/region"
	"repro/internal/scm"
	"repro/internal/telemetry"
)

// exploreMain runs the crash-point exploration over the §6.2 random-update
// workload: instead of sampling crashes with a seeded policy, it enumerates
// every persistence event of one recorded run and replays the workload
// crashing immediately before each of them, under every crash policy,
// checking the full stack (regions, heap, transactions) after each.
// Returns the process exit code.
func exploreMain() int {
	ops := *nops
	if ops > 24 {
		// Exploration replays the workload points×policies times; the
		// default -ops (tuned for the sampling tests) would take hours.
		ops = 8
	}
	txs := exploreTxs(ops, *seed)

	var opt crashpoint.Options
	if *points > 0 {
		opt.Schedule = crashpoint.Budget{N: *points}
	}
	lastPct := -1
	opt.Progress = func(done, total int) {
		if pct := done * 100 / total; pct != lastPct && pct%10 == 0 {
			fmt.Printf("\rexplore          %3d%% (%d/%d replays)", pct, done, total)
			lastPct = pct
		}
	}

	rep, err := crashpoint.Explore(exploreWorkload(txs), opt)
	fmt.Println()
	if err != nil {
		fmt.Printf("explore          ERROR: %v\n", err)
		return 1
	}
	fmt.Printf("explore          %s\n", rep)
	snap := telemetry.Default.Snapshot()
	fmt.Printf("telemetry        crashpoint_runs_total=%.0f crashpoint_failures_total=%.0f crashpoint_points=%.0f\n",
		snap["crashpoint_runs_total"], snap["crashpoint_failures_total"], snap["crashpoint_points"])
	if rep.Failed() {
		for _, f := range rep.Failures {
			fmt.Printf("  %v\n", f)
		}
		return 1
	}
	return 0
}

// exploreTxs precomputes the deterministic transaction list (offset/value
// pairs over a 64-word array) so every replay issues the identical event
// sequence.
func exploreTxs(ops int, seed int64) [][][2]uint64 {
	rng := rand.New(rand.NewSource(seed))
	txs := make([][][2]uint64, ops)
	for i := range txs {
		n := 1 + rng.Intn(4)
		seen := map[uint64]bool{}
		for j := 0; j < n; j++ {
			off := uint64(rng.Intn(64)) * 8
			if seen[off] {
				continue
			}
			seen[off] = true
			txs[i] = append(txs[i], [2]uint64{off, rng.Uint64()})
		}
	}
	return txs
}

// exploreModel folds the first m transactions into the expected image.
func exploreModel(txs [][][2]uint64, m int) [64]uint64 {
	var img [64]uint64
	for i := 0; i < m && i < len(txs); i++ {
		for _, w := range txs[i] {
			img[w[0]/8] = w[1]
		}
	}
	return img
}

// exploreWorkload builds crash-point Runs over a deliberately small stack
// (heap, log and data sized for replay speed, not capacity).
func exploreWorkload(txs [][][2]uint64) crashpoint.Workload {
	const heapSize = 256 << 10
	return func() (*crashpoint.Run, error) {
		dev, err := scm.Open(scm.Config{Size: 8 << 20, Mode: scm.DelayOff})
		if err != nil {
			return nil, err
		}
		dir, err := os.MkdirTemp("", "crashtest-explore-*")
		if err != nil {
			return nil, err
		}
		acked := 0

		openAll := func() (*region.Runtime, *pheap.Heap, *mtm.TM, pmem.Addr, error) {
			rt, err := region.Open(dev, region.Config{Dir: dir})
			if err != nil {
				return nil, nil, nil, pmem.Nil, err
			}
			heapPtr, _, err := rt.Static("explore.heap", 8)
			if err != nil {
				return nil, nil, nil, pmem.Nil, err
			}
			mem := rt.NewMemory()
			var heap *pheap.Heap
			if base := pmem.Addr(mem.LoadU64(heapPtr)); base == pmem.Nil {
				base, err = rt.PMapAt(heapPtr, heapSize, 0)
				if err == nil {
					heap, err = pheap.Format(rt, base, heapSize, pheap.Config{Lanes: 2})
				}
			} else {
				heap, err = pheap.Open(rt, base)
				if errors.Is(err, pheap.ErrNoHeap) {
					// The crash fell between linking the heap region and
					// Format's commit; nothing can live there yet.
					heap, err = pheap.Format(rt, base, heapSize, pheap.Config{Lanes: 2})
				}
			}
			if err != nil {
				return nil, nil, nil, pmem.Nil, err
			}
			tm, err := mtm.Open(rt, "explore", mtm.Config{Heap: heap, Slots: 2, LogWords: 512})
			if err != nil {
				return nil, nil, nil, pmem.Nil, err
			}
			dataPtr, _, err := rt.Static("explore.data", 8)
			if err != nil {
				return nil, nil, nil, pmem.Nil, err
			}
			data := pmem.Addr(mem.LoadU64(dataPtr))
			if data == pmem.Nil {
				if data, err = rt.PMapAt(dataPtr, scm.PageSize, 0); err != nil {
					return nil, nil, nil, pmem.Nil, err
				}
			}
			return rt, heap, tm, data, nil
		}

		return &crashpoint.Run{
			Dev: dev,
			Body: func() error {
				_, _, tm, data, err := openAll()
				if err != nil {
					return err
				}
				th, err := tm.NewThread()
				if err != nil {
					return err
				}
				for i, writes := range txs {
					err := th.Atomic(func(tx *mtm.Tx) error {
						for _, w := range writes {
							tx.StoreU64(data.Add(int64(w[0])), w[1])
						}
						return nil
					})
					if err != nil {
						return err
					}
					acked = i + 1
				}
				return nil
			},
			Check: func() error {
				defer os.RemoveAll(dir)
				rt, heap, tm, data, err := openAll()
				if err != nil {
					return fmt.Errorf("stack not reopenable after %d acked txs: %w", acked, err)
				}
				defer rt.Close()
				defer tm.Close()
				if err := heap.Check(); err != nil {
					return err
				}
				mem := rt.NewMemory()
				var img [64]uint64
				for i := int64(0); i < 64; i++ {
					img[i] = mem.LoadU64(data.Add(i * 8))
				}
				for _, m := range []int{acked, acked + 1} {
					if m <= len(txs) && img == exploreModel(txs, m) {
						return nil
					}
				}
				return fmt.Errorf("memory matches neither %d nor %d applied transactions", acked, acked+1)
			},
		}, nil
	}
}
