// Command crashtest is the paper's reliability validation (§6.2): "we
// wrote a crash stress program, which uses transactions to perform random
// updates to memory using a known seed. We verified that after a crash,
// memory contains the correct random values." It also injects torn-bit
// flips into the RAWL and crashes a directory server mid-workload.
//
// Crashes are simulated in-process: the SCM emulator reverts a seeded
// pseudo-random subset of every unflushed cache line and unfenced
// streaming word, then the whole Mnemosyne stack is reopened over the
// surviving bytes and must recover.
//
// With -explore, crashtest switches from seeded sampling to systematic
// crash-point exploration (internal/crashpoint): one recorded run
// enumerates every persistence event, then the workload is replayed with
// power cut immediately before each event under every crash policy, and
// the whole stack must recover each time. -points bounds how many crash
// points are replayed (0 explores all of them).
//
// Usage:
//
//	crashtest [-rounds N] [-ops N] [-seed N]
//	crashtest -explore [-points N] [-seed N]
package main

import (
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/ldapdir"
	"repro/internal/mtm"
	"repro/internal/pheap"
	"repro/internal/pmem"
	"repro/internal/rawl"
	"repro/internal/region"
	"repro/internal/scm"
)

var (
	rounds  = flag.Int("rounds", 20, "crash/recover rounds per test")
	nops    = flag.Int("ops", 200, "transactions per round")
	seed    = flag.Int64("seed", 1, "base PRNG seed")
	explore = flag.Bool("explore", false, "systematically explore every crash point instead of sampling")
	points  = flag.Int("points", 0, "crash points to replay in -explore mode (0 = all)")
)

func main() {
	flag.Parse()
	if *explore {
		os.Exit(exploreMain())
	}
	fail := 0
	for name, test := range map[string]func() error{
		"random-updates": randomUpdates,
		"tornbit-flips":  tornbitFlips,
		"ldap-midload":   ldapMidload,
	} {
		fmt.Printf("%-16s ", name)
		if err := test(); err != nil {
			fmt.Printf("FAIL: %v\n", err)
			fail++
		} else {
			fmt.Printf("ok (%d rounds)\n", *rounds)
		}
	}
	if fail > 0 {
		os.Exit(1)
	}
}

type stack struct {
	dev  *scm.Device
	rt   *region.Runtime
	heap *pheap.Heap
	tm   *mtm.TM
	dir  string
}

func openStack(dev *scm.Device, dir string) (*stack, error) {
	rt, err := region.Open(dev, region.Config{Dir: dir})
	if err != nil {
		return nil, err
	}
	heapPtr, _, err := rt.Static("crash.heap", 8)
	if err != nil {
		return nil, err
	}
	mem := rt.NewMemory()
	var heap *pheap.Heap
	if base := pmem.Addr(mem.LoadU64(heapPtr)); base == pmem.Nil {
		base, err := rt.PMapAt(heapPtr, 64<<20, 0)
		if err != nil {
			return nil, err
		}
		if heap, err = pheap.Format(rt, base, 64<<20, pheap.Config{Lanes: 8}); err != nil {
			return nil, err
		}
	} else {
		heap, err = pheap.Open(rt, base)
		if errors.Is(err, pheap.ErrNoHeap) {
			// A crash between linking the heap region and Format's commit
			// point left the pointer over unformatted memory; nothing can
			// live there yet, so reformat.
			heap, err = pheap.Format(rt, base, 64<<20, pheap.Config{Lanes: 8})
		}
		if err != nil {
			return nil, err
		}
	}
	tm, err := mtm.Open(rt, "crash", mtm.Config{Heap: heap})
	if err != nil {
		return nil, err
	}
	return &stack{dev: dev, rt: rt, heap: heap, tm: tm, dir: dir}, nil
}

func (s *stack) reopen() (*stack, error) {
	s.tm.Close()
	if err := s.rt.Close(); err != nil {
		return nil, err
	}
	return openStack(s.dev, s.dir)
}

// randomUpdates is the paper's crash stress program.
func randomUpdates() error {
	dev, err := scm.Open(scm.Config{Size: 128 << 20, Mode: scm.DelayOff})
	if err != nil {
		return err
	}
	dir, err := os.MkdirTemp("", "crashtest-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	st, err := openStack(dev, dir)
	if err != nil {
		return err
	}
	dataPtr, _, err := st.rt.Static("crash.data", 8)
	if err != nil {
		return err
	}
	data, err := st.rt.PMapAt(dataPtr, 1<<20, 0)
	if err != nil {
		return err
	}

	expect := make(map[int64]uint64)
	rng := rand.New(rand.NewSource(*seed))
	for round := 0; round < *rounds; round++ {
		th, err := st.tm.NewThread()
		if err != nil {
			return err
		}
		for i := 0; i < *nops; i++ {
			n := 1 + rng.Intn(10)
			writes := make(map[int64]uint64, n)
			for j := 0; j < n; j++ {
				writes[int64(rng.Intn(8192))*8] = rng.Uint64()
			}
			if err := th.Atomic(func(tx *mtm.Tx) error {
				for off, v := range writes {
					tx.StoreU64(data.Add(off), v)
				}
				return nil
			}); err != nil {
				return err
			}
			for off, v := range writes {
				expect[off] = v
			}
		}
		dev.Crash(scm.NewRandomPolicy(*seed + int64(round)))
		if st, err = st.reopen(); err != nil {
			return fmt.Errorf("round %d: reopen: %w", round, err)
		}
		mem := st.rt.NewMemory()
		for off, v := range expect {
			if got := mem.LoadU64(data.Add(off)); got != v {
				return fmt.Errorf("round %d: word %d = %#x, want %#x", round, off, got, v)
			}
		}
	}
	return nil
}

// tornbitFlips injects bit flips into a flushed log and checks that
// recovery discards the damaged suffix but never returns corrupt records.
func tornbitFlips() error {
	for round := 0; round < *rounds; round++ {
		dev, err := scm.Open(scm.Config{Size: 16 << 20, Mode: scm.DelayOff})
		if err != nil {
			return err
		}
		dir, err := os.MkdirTemp("", "crashtest-*")
		if err != nil {
			return err
		}
		rt, err := region.Open(dev, region.Config{Dir: dir})
		if err != nil {
			return err
		}
		base, err := rt.PMap(rawl.Size(1024), 0)
		if err != nil {
			return err
		}
		mem := rt.NewMemory()
		log, err := rawl.Create(mem, base, 1024)
		if err != nil {
			return err
		}
		rng := rand.New(rand.NewSource(*seed + int64(round)))
		var want [][]uint64
		for i := 0; i < 20; i++ {
			rec := make([]uint64, 1+rng.Intn(8))
			for j := range rec {
				rec[j] = rng.Uint64()
			}
			if _, err := log.Append(rec); err != nil {
				return err
			}
			want = append(want, rec)
		}
		log.Flush()

		// Flip one torn bit somewhere in the written area.
		flipAt := base.Add(64 + int64(rng.Intn(100))*8)
		mem.WTStoreU64(flipAt, mem.LoadU64(flipAt)^(1<<63))
		mem.Fence()
		dev.Crash(scm.DropAll{})

		_, recs, err := rawl.Open(mem, base)
		if err != nil {
			return err
		}
		if len(recs) > len(want) {
			return fmt.Errorf("round %d: recovered %d > appended %d", round, len(recs), len(want))
		}
		for i, rec := range recs {
			if len(rec) != len(want[i]) {
				return fmt.Errorf("round %d: record %d torn", round, i)
			}
			for j := range rec {
				if rec[j] != want[i][j] {
					return fmt.Errorf("round %d: record %d corrupt", round, i)
				}
			}
		}
		os.RemoveAll(dir)
	}
	return nil
}

// ldapMidload crashes the directory server "in the middle of a
// transaction" stream and verifies entries added before the crash are
// still available (§6.2: "we verified that after every restart, the data
// affected by the transaction were still available").
func ldapMidload() error {
	dev, err := scm.Open(scm.Config{Size: 256 << 20, Mode: scm.DelayOff})
	if err != nil {
		return err
	}
	dir, err := os.MkdirTemp("", "crashtest-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	st, err := openStack(dev, dir)
	if err != nil {
		return err
	}
	added := 0
	for round := 0; round < *rounds; round++ {
		backend, err := ldapdir.OpenMnemosyneBackend(st.rt, st.tm, uint64(round+1))
		if err != nil {
			return err
		}
		sess, err := backend.Session()
		if err != nil {
			return err
		}
		for i := 0; i < 50; i++ {
			if err := sess.Add(ldapdir.TemplateEntry(added)); err != nil {
				return err
			}
			added++
		}
		dev.Crash(scm.NewRandomPolicy(*seed + int64(round)))
		if st, err = st.reopen(); err != nil {
			return fmt.Errorf("round %d: %w", round, err)
		}
		backend, err = ldapdir.OpenMnemosyneBackend(st.rt, st.tm, uint64(round+100))
		if err != nil {
			return err
		}
		sess, err = backend.Session()
		if err != nil {
			return err
		}
		for i := 0; i < added; i++ {
			if _, err := sess.Search(ldapdir.TemplateEntry(i).DN); err != nil {
				return fmt.Errorf("round %d: entry %d lost: %w", round, i, err)
			}
		}
	}
	return nil
}
