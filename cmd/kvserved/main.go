// Command kvserved serves a durable key-value store over TCP, with every
// acknowledged update persisted through a Mnemosyne durable memory
// transaction before the reply leaves the server.
//
// Usage:
//
//	kvserved [-addr :7070] [-image scm.img] [-dir ./pmem] [-size 256MiB]
//
// Protocol (line-oriented; try it with `nc localhost 7070`):
//
//	SET <key> <value> | GET <key> | DEL <key> | COUNT | PING | QUIT
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"

	"repro/internal/core"
	"repro/internal/kvserve"
)

var (
	addr    = flag.String("addr", ":7070", "listen address")
	image   = flag.String("image", "scm.img", "SCM device image file")
	dir     = flag.String("dir", ".", "region backing directory")
	size    = flag.Int64("size", 256<<20, "device size in bytes")
	emulate = flag.Bool("emulate-latency", false, "spin-emulate PCM write latency")
)

func main() {
	flag.Parse()
	pm, err := core.Open(core.Config{
		DevicePath:     *image,
		Dir:            *dir,
		DeviceSize:     *size,
		EmulateLatency: *emulate,
	})
	if err != nil {
		log.Fatalf("kvserved: open persistent memory: %v", err)
	}
	srv, err := kvserve.New(pm)
	if err != nil {
		log.Fatalf("kvserved: %v", err)
	}
	l, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("kvserved: listen: %v", err)
	}
	fmt.Printf("kvserved: serving durable KV on %s (image %s)\n", l.Addr(), *image)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	go func() {
		<-sig
		fmt.Println("kvserved: shutting down")
		srv.Close()
		if err := pm.Close(); err != nil {
			log.Printf("kvserved: close: %v", err)
		}
		os.Exit(0)
	}()

	if err := srv.Serve(l); err != nil {
		log.Fatalf("kvserved: %v", err)
	}
	_ = pm.Close()
}
