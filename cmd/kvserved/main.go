// Command kvserved serves a durable key-value store over TCP, with every
// acknowledged update persisted through a Mnemosyne durable memory
// transaction before the reply leaves the server.
//
// Usage:
//
//	kvserved [-addr :7070] [-resp-addr :6379] [-image scm.img] [-dir ./pmem]
//	         [-size 256MiB] [-backend mtm|mod] [-shards 4] [-recovery-workers 2]
//	         [-group-commit] [-group-commit-wait 50µs] [-metrics-addr :9090]
//	         [-commit-mode hybrid] [-hybrid-undo-max 16]
//	         [-read-cache 65536] [-read-latency 100ns]
//	         [-trace] [-attribution] [-slow-threshold 50ms]
//	         [-latency-sample-rate 16]
//
// With -shards N (N > 1) the store is N fully independent Mnemosyne
// instances behind the same wire protocol: shard k's device lives at
// <image>.shard<k> with region files under <dir>/shard-<k>, single-key
// commands route by key hash, MGET/MSET/MDEL scatter-gather, and a
// cross-shard MSET commits atomically through per-shard intent records.
// Boot recovers shards concurrently, bounded by -recovery-workers
// (default: one worker per shard). -shards 1 (the default) keeps the
// classic single-instance layout, so existing images stay drop-in.
//
// Protocol (line-oriented; try it with `nc localhost 7070`):
//
//	SET <key> <value> | GET <key> | DEL <key> | MSET <k> <v> ... |
//	MDEL <key> ... | COUNT | STATS | PING | QUIT
//
// Pipelined clients (several request lines in flight) are answered in
// order; with -group-commit their transactions share durability fences.
//
// With -backend mod the store runs on the MOD shadow-update map instead
// of the transactional B+ tree: one fence per mutation (no log, no
// transaction slots), buffered durability (a crash can lose only the
// single most recent acknowledged write), no TTL commands, unsharded
// only.
//
// With -resp-addr the same store is additionally served over RESP2 (the
// redis wire protocol): `redis-cli -p 6379` then SET/GET/DEL/MSET/MGET,
// hashes (HSET/HGET/HDEL/HLEN/HGETALL) and crash-safe TTLs (SET ... EX,
// EXPIRE/PEXPIRE/TTL/PTTL/PERSIST). RESP bulk strings are binary-safe,
// so values may contain spaces and arbitrary bytes; every acknowledged
// write is durable before its reply on either transport.
//
// With -metrics-addr the server also exposes Prometheus metrics on
// GET /metrics, expvar on /debug/vars, pprof under /debug/pprof/ and —
// with -trace — a Chrome trace_event dump of recent persistence events
// on GET /trace (load it in chrome://tracing or Perfetto).
//
// Phase attribution (-attribution, on by default) records per-phase
// latency histograms for every stage of a request — parse, exec, lease
// wait, transaction body, validate, log append, fence, write-back,
// truncate — and arms the slow-commit flight recorder: any request slower
// than -slow-threshold is captured as a full span tree, served on
// /debug/mnemosyne/slow (and `pmctl slow`). -slow-threshold 0 disarms
// the recorder.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"time"

	"repro/internal/core"
	"repro/internal/kvserve"
	"repro/internal/pds"
	"repro/internal/shard"
	"repro/internal/telemetry"
)

var (
	addr        = flag.String("addr", ":7070", "listen address")
	respAddr    = flag.String("resp-addr", "", "additionally serve the RESP2 (redis) protocol on this address (empty disables); try `redis-cli -p <port>`")
	image       = flag.String("image", "scm.img", "SCM device image file")
	dir         = flag.String("dir", ".", "region backing directory")
	size        = flag.Int64("size", 256<<20, "device size in bytes")
	emulate     = flag.Bool("emulate-latency", false, "spin-emulate PCM write latency")
	shards      = flag.Int("shards", 1, "independent PM shards behind the front end (1 = classic single-instance layout)")
	recWorkers  = flag.Int("recovery-workers", 0, "max shards recovering concurrently at boot (0 = one worker per shard)")
	threads     = flag.Int("threads", 0, "concurrent transaction threads (0 = default 32); caps concurrent connections, not cumulative ones")
	leaseWait   = flag.Duration("lease-timeout", 0, "how long a connection waits for a transaction thread when all are busy (0 = default 5s)")
	metricsAddr = flag.String("metrics-addr", "", "serve Prometheus /metrics, expvar and pprof on this address (empty disables)")
	traceOn     = flag.Bool("trace", false, "record persistence events to the in-memory trace ring (served on /trace)")
	groupCommit = flag.Bool("group-commit", false, "coalesce durability fences across concurrent commits")
	gcWait      = flag.Duration("group-commit-wait", 0, "epoch leader's gathering window while writers are active (0 = default 50µs, negative disables)")
	gcBatch     = flag.Int("group-commit-batch", 0, "max transactions per commit epoch (0 = default 64)")
	attribution = flag.Bool("attribution", true, "record per-phase latency histograms and fence counters")
	slowThresh  = flag.Duration("slow-threshold", 50*time.Millisecond, "capture span trees of requests slower than this in the flight recorder (0 disables)")
	slowKeep    = flag.Int("slow-keep", 8, "slowest captures retained by the flight recorder")
	latSample   = flag.Int("latency-sample-rate", 0, "sample commit/abort latency 1-in-N (0 = default 16; 1 with -attribution)")
	commitMode  = flag.String("commit-mode", "", `durable-commit protocol: "redo" (default), "undo" (in-place stores behind a persisted undo record, one fewer fence per commit), or "hybrid" (undo up to -hybrid-undo-max writes, redo above)`)
	hybridMax   = flag.Int("hybrid-undo-max", 0, "hybrid mode's write-set threshold for the undo path (0 = default 16)")
	readCache   = flag.Int("read-cache", 0, "words of volatile read-through cache over hot persistent words, per memory view (0 disables)")
	readLatency = flag.Duration("read-latency", 0, "emulated extra PCM read latency per word load (0 = reads free, the paper's model)")
	backendName = flag.String("backend", "mtm", `storage backend: "mtm" (transactional B+ tree, immediate durability) or "mod" (single-fence shadow-update map; buffered durability, no TTLs, unsharded only)`)
)

func main() {
	flag.Parse()
	if *traceOn {
		telemetry.DefaultTracer.Enable()
	}
	sample := *latSample
	if *attribution {
		telemetry.EnableAttribution()
		if sample == 0 {
			sample = 1 // attribution wants every commit in the histograms
		}
	}
	if *slowThresh > 0 {
		telemetry.DefaultRecorder.Configure(*slowThresh, *slowKeep, 10*time.Minute)
	}
	cfg := core.Config{
		DevicePath:     *image,
		Dir:            *dir,
		DeviceSize:     *size,
		EmulateLatency: *emulate,
		Threads:        *threads,
		LeaseTimeout:   *leaseWait,

		GroupCommit:       *groupCommit,
		GroupCommitWait:   *gcWait,
		GroupCommitBatch:  *gcBatch,
		LatencySampleRate: sample,
		CommitMode:        *commitMode,
		HybridUndoMax:     *hybridMax,
		ReadCacheWords:    *readCache,
		ReadLatency:       *readLatency,
	}
	backend, err := pds.ParseBackend(*backendName)
	if err != nil {
		log.Fatalf("kvserved: %v", err)
	}
	var (
		srv     *kvserve.Server
		closeFn func() error
	)
	if *shards > 1 {
		if backend != pds.BackendMTM {
			log.Fatalf("kvserved: -backend %s is unsharded only (use -shards 1)", backend)
		}
		st, err := shard.Open(shard.Config{
			Config:          cfg,
			Shards:          *shards,
			RecoveryWorkers: *recWorkers,
		})
		if err != nil {
			log.Fatalf("kvserved: open sharded store: %v", err)
		}
		if srv, err = kvserve.NewSharded(st); err != nil {
			log.Fatalf("kvserved: %v", err)
		}
		closeFn = st.Close
	} else {
		pm, err := core.Open(cfg)
		if err != nil {
			log.Fatalf("kvserved: open persistent memory: %v", err)
		}
		if srv, err = kvserve.NewBackend(pm, backend); err != nil {
			log.Fatalf("kvserved: %v", err)
		}
		closeFn = pm.Close
	}
	l, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("kvserved: listen: %v", err)
	}
	if *shards > 1 {
		fmt.Printf("kvserved: serving durable KV on %s (%d shards, image %s.shard<k>)\n", l.Addr(), *shards, *image)
	} else {
		fmt.Printf("kvserved: serving durable KV on %s (image %s)\n", l.Addr(), *image)
	}
	if *metricsAddr != "" {
		_, bound, err := telemetry.Serve(*metricsAddr, telemetry.Default, telemetry.DefaultTracer)
		if err != nil {
			log.Fatalf("kvserved: metrics listener: %v", err)
		}
		fmt.Printf("kvserved: telemetry on http://%s/metrics\n", bound)
	}
	if *respAddr != "" {
		rl, err := net.Listen("tcp", *respAddr)
		if err != nil {
			log.Fatalf("kvserved: RESP listener: %v", err)
		}
		fmt.Printf("kvserved: serving RESP2 (redis protocol) on %s\n", rl.Addr())
		go func() {
			if err := srv.ServeRESP(rl); err != nil {
				log.Fatalf("kvserved: resp: %v", err)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	// The handler only stops the listener; Serve then returns nil and the
	// main goroutine runs the one pm.Close. Closing (and exiting) here as
	// well raced that close and could kill the process mid image-save,
	// losing acknowledged data across a graceful restart.
	go func() {
		<-sig
		fmt.Println("kvserved: shutting down")
		srv.Close()
	}()

	if err := srv.Serve(l); err != nil {
		log.Fatalf("kvserved: %v", err)
	}
	if err := closeFn(); err != nil {
		log.Fatalf("kvserved: close: %v", err)
	}
}
