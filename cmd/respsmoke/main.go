// Command respsmoke is a minimal RESP2 client that smoke-tests a running
// kvserved -resp-addr endpoint: it drives SET/GET (including a
// binary-unsafe-over-line-protocol value), hashes, and TTLs over the
// wire and verifies every reply, exiting non-zero on the first mismatch.
// CI uses it so the RESP surface is exercised end to end without an
// external redis-cli in the image.
//
// Usage:
//
//	respsmoke [-addr localhost:6379]
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"reflect"
	"time"

	"repro/internal/resp"
)

var addr = flag.String("addr", "localhost:6379", "RESP endpoint to smoke-test")

type client struct {
	conn net.Conn
	r    *resp.Reader
	w    *resp.Writer
}

func (c *client) do(args ...string) (resp.Value, error) {
	if err := c.w.WriteCommandStrings(args...); err != nil {
		return resp.Value{}, err
	}
	if err := c.w.Flush(); err != nil {
		return resp.Value{}, err
	}
	return c.r.ReadValue()
}

func (c *client) expect(want resp.Value, args ...string) {
	got, err := c.do(args...)
	if err != nil {
		log.Fatalf("respsmoke: %v: %v", args, err)
	}
	if !reflect.DeepEqual(got, want) {
		log.Fatalf("respsmoke: %v: got %+v, want %+v", args, got, want)
	}
	fmt.Printf("respsmoke: ok %v\n", args)
}

func simple(s string) resp.Value { return resp.Value{Type: '+', Str: s} }
func integer(n int64) resp.Value { return resp.Value{Type: ':', Int: n} }
func bulk(s string) resp.Value   { return resp.Value{Type: '$', Bulk: []byte(s)} }
func nullBulk() resp.Value       { return resp.Value{Type: '$', Null: true} }

func main() {
	flag.Parse()
	conn, err := net.DialTimeout("tcp", *addr, 5*time.Second)
	if err != nil {
		log.Fatalf("respsmoke: dial %s: %v", *addr, err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(30 * time.Second))
	c := &client{conn: conn, r: resp.NewReader(conn), w: resp.NewWriter(conn)}

	c.expect(simple("PONG"), "PING")

	// Strings, including a value the line protocol cannot carry.
	c.expect(simple("OK"), "SET", "smoke:k", "hello world\r\nwith binary \x00 bytes")
	c.expect(bulk("hello world\r\nwith binary \x00 bytes"), "GET", "smoke:k")
	c.expect(integer(1), "DEL", "smoke:k")
	c.expect(nullBulk(), "GET", "smoke:k")

	// Multi-key atomic write, snapshot read.
	c.expect(simple("OK"), "MSET", "smoke:a", "1", "smoke:b", "2")
	got, err := c.do("MGET", "smoke:a", "smoke:b", "smoke:missing")
	if err != nil || got.Type != '*' || len(got.Array) != 3 ||
		string(got.Array[0].Bulk) != "1" || string(got.Array[1].Bulk) != "2" || !got.Array[2].Null {
		log.Fatalf("respsmoke: MGET: got %+v, err %v", got, err)
	}
	fmt.Println("respsmoke: ok [MGET smoke:a smoke:b smoke:missing]")

	// Hashes.
	c.expect(integer(2), "HSET", "smoke:h", "f1", "v1", "f2", "v2")
	c.expect(bulk("v1"), "HGET", "smoke:h", "f1")
	c.expect(integer(2), "HLEN", "smoke:h")
	c.expect(integer(1), "HDEL", "smoke:h", "f1")
	c.expect(integer(1), "HLEN", "smoke:h")

	// TTLs: a far deadline survives, EXPIRE with 0 deletes.
	c.expect(simple("OK"), "SET", "smoke:ttl", "v", "EX", "100")
	ttl, err := c.do("TTL", "smoke:ttl")
	if err != nil || ttl.Type != ':' || ttl.Int <= 0 || ttl.Int > 100 {
		log.Fatalf("respsmoke: TTL: got %+v, err %v", ttl, err)
	}
	fmt.Println("respsmoke: ok [TTL smoke:ttl]")
	c.expect(integer(1), "PERSIST", "smoke:ttl")
	c.expect(integer(-1), "TTL", "smoke:ttl")
	c.expect(integer(1), "EXPIRE", "smoke:ttl", "0")
	c.expect(nullBulk(), "GET", "smoke:ttl")

	// Cleanup and goodbye.
	c.expect(integer(2), "MDEL", "smoke:a", "smoke:b")
	c.expect(integer(1), "DEL", "smoke:h")
	c.expect(simple("OK"), "QUIT")

	fmt.Println("respsmoke: PASS")
}
