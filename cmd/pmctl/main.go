// Command pmctl inspects persistent-memory state: the region manager's
// mapping table, the process region table, static variables and heap
// occupancy of an SCM image file.
//
// Usage:
//
//	pmctl -image scm.img -dir ./regions [-size N] <info|regions|statics|heap|stats|shards|slow>
//
// `stats` prints the telemetry registry in Prometheus text format. With
// -metrics-url it instead scrapes a live server's /metrics endpoint
// (e.g. a kvserved started with -metrics-addr), so the same subcommand
// works against both an offline image and a running process.
//
// `shards` scrapes the same endpoint and distills the sharded store's
// per-shard dimensions into one table — commits, device fences,
// fences/commit and last recovery time per shard — plus the cross-shard
// intents resolved at the most recent attach. Requires -metrics-url
// against a kvserved running with -shards > 1.
//
// `slow` fetches a live server's slow-commit flight recorder (the
// /debug/mnemosyne/slow endpoint, derived from -metrics-url) and prints
// each captured request or transaction as an indented span tree with
// per-phase durations. Requires -metrics-url.
//
// The image and backing directory are opened read-mostly; pmctl performs
// the same boot reconstruction a restarting process would, so it also
// doubles as a recovery smoke test for an image.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/pheap"
	"repro/internal/pmem"
	"repro/internal/region"
	"repro/internal/scm"
	"repro/internal/telemetry"
)

var (
	imagePath  = flag.String("image", "scm.img", "SCM device image file")
	dirPath    = flag.String("dir", ".", "region backing directory")
	devSize    = flag.Int64("size", 256<<20, "device size in bytes (must match the image)")
	heapAt     = flag.Uint64("heap", 0, "persistent address of a heap to inspect (for `heap`)")
	metricsURL = flag.String("metrics-url", "", "scrape this /metrics URL instead of opening the image (for `stats`)")
)

func main() {
	flag.Parse()
	cmd := "info"
	if flag.NArg() > 0 {
		cmd = flag.Arg(0)
	}
	if err := run(cmd); err != nil {
		fmt.Fprintf(os.Stderr, "pmctl: %v\n", err)
		os.Exit(1)
	}
}

// scrape fetches a live server's Prometheus endpoint and copies it to
// stdout, so `pmctl stats -metrics-url ...` works without touching the
// image the server has open.
func scrape(url string) error {
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("scrape %s: %s", url, resp.Status)
	}
	_, err = io.Copy(os.Stdout, resp.Body)
	return err
}

// scrapeValues fetches a live server's Prometheus endpoint into a
// name → value map (samples only; HELP/TYPE lines are skipped).
func scrapeValues(url string) (map[string]float64, error) {
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("scrape %s: %s", url, resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	vals := map[string]float64{}
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, num, ok := strings.Cut(line, " ")
		if !ok {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(num), 64)
		if err != nil {
			continue
		}
		vals[name] = v
	}
	return vals, nil
}

// runShards scrapes a live sharded server and prints the per-shard
// telemetry dimensions as one table.
func runShards() error {
	if *metricsURL == "" {
		return fmt.Errorf("shards: pass -metrics-url (e.g. http://localhost:9090/metrics)")
	}
	vals, err := scrapeValues(*metricsURL)
	if err != nil {
		return err
	}
	n := int(vals["shard_count"])
	if n == 0 {
		return fmt.Errorf("shards: no shard_count in %s (server not started with -shards > 1?)", *metricsURL)
	}
	fmt.Printf("%d shards\n", n)
	fmt.Printf("%-6s %12s %12s %14s %12s\n", "shard", "commits", "fences", "fences/commit", "recovery")
	var commits, fences float64
	for k := 0; k < n; k++ {
		c := vals[fmt.Sprintf("shard%d_commits", k)]
		f := vals[fmt.Sprintf("shard%d_fences", k)]
		commits += c
		fences += f
		fmt.Printf("%-6d %12.0f %12.0f %14.2f %12v\n", k, c, f,
			vals[fmt.Sprintf("shard%d_fences_per_commit", k)],
			time.Duration(vals[fmt.Sprintf("shard%d_recovery_ns", k)]))
	}
	agg := 0.0
	if commits > 0 {
		agg = fences / commits
	}
	fmt.Printf("%-6s %12.0f %12.0f %14.2f\n", "total", commits, fences, agg)
	fmt.Printf("cross-shard MSETs: %.0f started, %.0f aborted; last attach resolved %.0f commit(s), %.0f abort(s)\n",
		vals["shard_xmsets_total"], vals["shard_xmset_aborts_total"],
		vals["shard_recovered_xmset_commits"], vals["shard_recovered_xmset_aborts"])
	return nil
}

// slowEndpoint derives the flight-recorder URL from the metrics URL, so
// the one -metrics-url flag addresses both endpoints.
func slowEndpoint(metricsURL string) string {
	return strings.TrimSuffix(metricsURL, "/metrics") + "/debug/mnemosyne/slow"
}

// runSlow fetches and pretty-prints the slow-commit flight recorder of a
// live server: one indented span tree per captured slow root span.
func runSlow() error {
	if *metricsURL == "" {
		return fmt.Errorf("slow: pass -metrics-url (e.g. http://localhost:9090/metrics)")
	}
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(slowEndpoint(*metricsURL))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("fetch %s: %s", slowEndpoint(*metricsURL), resp.Status)
	}
	var dump struct {
		ThresholdNs int64                 `json:"threshold_ns"`
		WindowNs    int64                 `json:"window_ns"`
		Keep        int                   `json:"keep"`
		Entries     []telemetry.SlowEntry `json:"entries"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&dump); err != nil {
		return err
	}
	if dump.ThresholdNs == 0 {
		fmt.Println("flight recorder disarmed (server started with -slow-threshold 0)")
		return nil
	}
	fmt.Printf("flight recorder: threshold %v, window %v, keeping %d slowest; %d captured\n",
		time.Duration(dump.ThresholdNs), time.Duration(dump.WindowNs), dump.Keep, len(dump.Entries))
	for i, e := range dump.Entries {
		fmt.Printf("\n#%d %s %v tid=%d captured %s\n",
			i+1, e.Phase, time.Duration(e.DurNs), e.TID, e.CapturedAt.Format(time.RFC3339))
		children := make(map[uint64][]telemetry.SpanView)
		for _, sp := range e.Spans {
			if sp.ID != e.Root {
				children[sp.Parent] = append(children[sp.Parent], sp)
			}
		}
		var walk func(id uint64, startNs int64, depth int)
		walk = func(id uint64, startNs int64, depth int) {
			for _, sp := range children[id] {
				fmt.Printf("  %s%-12s %10v  +%v\n", strings.Repeat("  ", depth),
					sp.Phase, time.Duration(sp.DurNs), time.Duration(sp.StartNs-startNs))
				walk(sp.ID, startNs, depth+1)
			}
		}
		for _, sp := range e.Spans {
			if sp.ID == e.Root {
				fmt.Printf("  %-12s %10v\n", sp.Phase, time.Duration(sp.DurNs))
				walk(e.Root, sp.StartNs, 1)
				break
			}
		}
	}
	return nil
}

func run(cmd string) error {
	if cmd == "slow" {
		return runSlow()
	}
	if cmd == "shards" {
		return runShards()
	}
	if cmd == "stats" && *metricsURL != "" {
		return scrape(*metricsURL)
	}
	dev, err := scm.Open(scm.Config{Size: *devSize, Mode: scm.DelayOff, Path: *imagePath})
	if err != nil {
		return err
	}
	rt, err := region.Open(dev, region.Config{Dir: *dirPath})
	if err != nil {
		return err
	}
	defer rt.Close()

	switch cmd {
	case "info":
		mgr := rt.Manager()
		fmt.Printf("device:   %s (%d bytes, %d frames)\n", *imagePath, dev.Size(), mgr.Frames())
		fmt.Printf("free:     %d frames (%.1f%%)\n", mgr.FreeFrames(),
			100*float64(mgr.FreeFrames())/float64(mgr.Frames()))
		fmt.Printf("boot:     %v reconstruction, %v remap, %d regions\n",
			rt.Stats().ManagerBoot, rt.Stats().Remap, rt.Stats().RegionsMapped)
	case "regions":
		fmt.Printf("%-18s %12s %10s\n", "Address", "Length", "Flags")
		for _, r := range rt.Regions() {
			flags := "pinned"
			if r.Flags&region.FlagSwappable != 0 {
				flags = "swappable"
			}
			kind := ""
			if r.Addr == pmem.Base {
				kind = " (static)"
			}
			fmt.Printf("%-18v %12d %10s%s\n", r.Addr, r.Len, flags, kind)
		}
	case "statics":
		fmt.Printf("%-40s %-18s %10s\n", "Name", "Address", "Size")
		for _, s := range rt.Statics() {
			fmt.Printf("%-40s %-18v %10d\n", s.Name, s.Addr, s.Size)
		}
	case "heap":
		if *heapAt == 0 {
			return fmt.Errorf("heap: pass -heap <addr> (see `regions`)")
		}
		h, err := pheap.Open(rt, pmem.Addr(*heapAt))
		if err != nil {
			return err
		}
		s := h.Stats()
		fmt.Printf("superblocks: %d (%d fully free)\n", s.Superblocks, s.FreeSuperblocks)
		fmt.Printf("large area:  %d bytes, %d free\n", s.LargeBytes, s.LargeFreeBytes)
		fmt.Printf("scavenge:    %v\n", h.ScavengeTime())
	case "stats":
		// The boot above already populated the region gauges; reading
		// the image offline is itself the recovery being measured.
		return telemetry.Default.WritePrometheus(os.Stdout)
	default:
		return fmt.Errorf("unknown command %q (want info, regions, statics, heap, stats, shards or slow)", cmd)
	}
	return nil
}
