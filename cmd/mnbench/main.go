// Command mnbench regenerates every table and figure of the Mnemosyne
// paper's evaluation (§6) on the emulated SCM stack.
//
// Usage:
//
//	mnbench [flags] <experiment>...
//
// Experiments: table4-ldap table4-tc table5 table6 fig4 fig5 fig6 fig7
// reincarnation ablation groupcommit readmostly sharded hybrid readcache
// resp mod all
//
// By default delays are spin-realized with the paper's parameters (150 ns
// extra write latency, 4 GB/s write bandwidth); -nospin disables delays
// for a quick functional pass, and -quick shrinks the workloads.
//
// -json writes a versioned results document (schema version, git commit,
// result rows, telemetry snapshot, per-phase latency summaries from
// -attribution, on by default). Snapshots checked in as BENCH_<n>.json at
// the repo root form the perf trajectory that cmd/perfgate compares in
// CI. -trace writes a Chrome trace_event JSON of the run's span ring.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/telemetry"
)

var (
	quick       = flag.Bool("quick", false, "shrink workloads for a fast pass")
	noSpin      = flag.Bool("nospin", false, "disable emulated write delays")
	ops         = flag.Int("ops", 0, "override ops per thread for microbenchmarks")
	csvDir      = flag.String("csv", "", "also write per-experiment CSV files into this directory")
	jsonPath    = flag.String("json", "", "write all rows plus a telemetry snapshot as JSON to this file")
	attribution = flag.Bool("attribution", true, "record per-phase latency histograms (adds phase summaries to -json)")
	tracePath   = flag.String("trace", "", "write a Chrome trace_event JSON of the run's span/event ring to this file")
)

// csvOut appends one row to <csvDir>/<name>.csv, creating it with the
// header on first use, so every table and figure can be re-plotted.
var csvFiles = map[string]*os.File{}

func csvOut(name, header string, cols ...interface{}) {
	jsonCollect(name, header, cols...)
	if *csvDir == "" {
		return
	}
	f, ok := csvFiles[name]
	if !ok {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "mnbench: csv: %v\n", err)
			return
		}
		var err error
		f, err = os.Create(fmt.Sprintf("%s/%s.csv", *csvDir, name))
		if err != nil {
			fmt.Fprintf(os.Stderr, "mnbench: csv: %v\n", err)
			return
		}
		fmt.Fprintln(f, header)
		csvFiles[name] = f
	}
	for i, c := range cols {
		if i > 0 {
			fmt.Fprint(f, ",")
		}
		fmt.Fprintf(f, "%v", c)
	}
	fmt.Fprintln(f)
}

// jsonRows accumulates every emitted result row for -json; the header's
// comma-separated column names become the row's JSON keys.
var jsonRows []map[string]interface{}

func jsonCollect(name, header string, cols ...interface{}) {
	if *jsonPath == "" {
		return
	}
	keys := strings.Split(header, ",")
	row := map[string]interface{}{"experiment": name}
	for i, c := range cols {
		if i < len(keys) {
			row[keys[i]] = c
		}
	}
	jsonRows = append(jsonRows, row)
}

// benchSchemaVersion versions the -json document layout; perfgate refuses
// to compare documents with mismatched schemas.
const benchSchemaVersion = 1

// gitCommit resolves the commit the binary was run against, for the
// versioned perf trajectory: `git rev-parse` first, the GIT_COMMIT
// environment variable as the CI fallback, "unknown" otherwise.
func gitCommit() string {
	if out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output(); err == nil {
		if s := strings.TrimSpace(string(out)); s != "" {
			return s
		}
	}
	if s := os.Getenv("GIT_COMMIT"); s != "" {
		return s
	}
	return "unknown"
}

// writeJSON dumps the collected rows plus a snapshot of the telemetry
// registry (counters, gauges and latency quantiles accumulated by the
// stack while the experiments ran) and the per-phase attribution
// summaries, so a results file carries the paper-level numbers, the
// low-level persistence activity behind them, and where the time went.
// The document is versioned and stamped with the git commit: snapshots
// checked in as BENCH_<n>.json form the repo's perf trajectory, and
// cmd/perfgate compares two of them.
func writeJSON() error {
	if *jsonPath == "" {
		return nil
	}
	out := struct {
		SchemaVersion int                               `json:"schema_version"`
		GitCommit     string                            `json:"git_commit"`
		GeneratedAt   string                            `json:"generated_at"`
		Quick         bool                              `json:"quick"`
		NoSpin        bool                              `json:"nospin"`
		Rows          []map[string]interface{}          `json:"rows"`
		Telemetry     map[string]float64                `json:"telemetry"`
		Phases        map[string]telemetry.PhaseSummary `json:"phases"`
	}{
		benchSchemaVersion, gitCommit(), time.Now().UTC().Format(time.RFC3339),
		*quick, *noSpin, jsonRows, telemetry.Default.Snapshot(),
		telemetry.PhaseSummaries(),
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(*jsonPath, append(data, '\n'), 0o644)
}

func baseOptions() bench.Options {
	o := bench.Options{Spin: !*noSpin}
	if *attribution {
		// Attribution runs want every commit in the histograms, not the
		// default 1-in-16 latency sample.
		o.LatencySampleRate = 1
	}
	return o
}

func scale(n int) int {
	if *ops > 0 {
		return *ops
	}
	if *quick {
		return n / 10
	}
	return n
}

var valueSizes = []int{8, 64, 256, 1024, 2048, 4096}

func main() {
	flag.Parse()
	if *attribution {
		telemetry.EnableAttribution()
	}
	if *tracePath != "" {
		telemetry.DefaultTracer.Enable()
	}
	args := flag.Args()
	if len(args) == 0 {
		args = []string{"all"}
	}
	for _, exp := range args {
		if err := run(exp); err != nil {
			fmt.Fprintf(os.Stderr, "mnbench: %s: %v\n", exp, err)
			os.Exit(1)
		}
	}
	for _, f := range csvFiles {
		f.Close()
	}
	if err := writeJSON(); err != nil {
		fmt.Fprintf(os.Stderr, "mnbench: json: %v\n", err)
		os.Exit(1)
	}
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err == nil {
			err = telemetry.DefaultTracer.WriteChromeJSON(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "mnbench: trace: %v\n", err)
			os.Exit(1)
		}
	}
}

func run(exp string) error {
	switch exp {
	case "all":
		for _, e := range []string{
			"table4-ldap", "table4-tc", "table5", "table6",
			"fig4", "fig5", "fig6", "fig7", "reincarnation", "ablation",
			"groupcommit", "readmostly", "sharded", "hybrid", "readcache",
			"resp", "mod",
		} {
			if err := run(e); err != nil {
				return err
			}
		}
		return nil
	case "table4-ldap":
		return table4LDAP()
	case "table4-tc":
		return table4TC()
	case "table5":
		return table5()
	case "table6":
		return table6()
	case "fig4", "fig5":
		return figs45()
	case "fig6":
		return fig6()
	case "fig7":
		return fig7()
	case "reincarnation":
		return reincarnation()
	case "ablation":
		return ablation()
	case "groupcommit":
		return groupCommit()
	case "readmostly":
		return readMostly()
	case "sharded":
		return sharded()
	case "hybrid":
		return hybrid()
	case "readcache":
		return readCache()
	case "resp":
		return respServe()
	case "mod":
		return modBackend()
	default:
		return fmt.Errorf("unknown experiment (want table4-ldap table4-tc table5 table6 fig4 fig5 fig6 fig7 reincarnation ablation groupcommit readmostly sharded hybrid readcache resp mod all)")
	}
}

func header(title string) {
	fmt.Printf("\n=== %s ===\n", title)
}

func table4LDAP() error {
	header("Table 4 (OpenLDAP): update throughput, SLAMD-like add workload")
	fmt.Printf("%-18s %-10s %12s\n", "Backend", "Workload", "Updates/s")
	for _, backend := range []string{"bdb", "ldbm", "mnemosyne"} {
		row, err := bench.RunLDAP(bench.LDAPOpts{
			Options: baseOptions(),
			Backend: backend,
			Threads: 16,
			Entries: scale(10000),
		})
		if err != nil {
			return err
		}
		fmt.Printf("%-18s %-10s %12.0f\n", row.Backend, "SLAMD", row.UpdatesPS)
		csvOut("table4_ldap", "backend,threads,updates_per_sec",
			row.Backend, row.Threads, row.UpdatesPS)
	}
	return nil
}

func table4TC() error {
	header("Table 4 (Tokyo Cabinet): update throughput, insert/delete queries")
	fmt.Printf("%-26s %8s %12s\n", "Mode", "Value", "Updates/s")
	for _, mode := range []string{"msync", "mnemosyne"} {
		for _, size := range []int{64, 1024} {
			row, err := bench.RunTC(bench.TCOpts{
				Options:   baseOptions(),
				Mode:      mode,
				ValueSize: size,
				Ops:       scale(3000),
			})
			if err != nil {
				return err
			}
			fmt.Printf("%-26s %7dB %12.0f\n", row.Mode, row.ValueSize, row.UpdatesPS)
			csvOut("table4_tc", "mode,value_bytes,updates_per_sec",
				row.Mode, row.ValueSize, row.UpdatesPS)
		}
	}
	return nil
}

func table5() error {
	header("Table 5: RB-tree updates vs Boost-style serialization")
	fmt.Printf("%10s %14s %18s %14s\n", "Tree Size", "Insert Lat", "Serialize Lat", "Inserts/Ser")
	sizes := []int{1 << 10, 8 << 10, 64 << 10, 256 << 10}
	if *quick {
		sizes = []int{1 << 10, 8 << 10}
	}
	for _, n := range sizes {
		row, err := bench.RunTable5(bench.Table5Opts{
			Options:  baseOptions(),
			TreeSize: n,
		})
		if err != nil {
			return err
		}
		fmt.Printf("%10d %12.1fus %16.0fus %14.0f\n",
			row.TreeSize,
			float64(row.InsertLatency.Nanoseconds())/1000,
			float64(row.SerializeLatency.Nanoseconds())/1000,
			row.InsertsPerSerialization)
		csvOut("table5", "tree_size,insert_ns,serialize_ns,inserts_per_serialization",
			row.TreeSize, row.InsertLatency.Nanoseconds(),
			row.SerializeLatency.Nanoseconds(), row.InsertsPerSerialization)
	}
	return nil
}

func table6() error {
	header("Table 6: base vs tornbit RAWL throughput")
	fmt.Printf("%8s %14s %14s %10s\n", "Record", "Base MB/s", "Tornbit MB/s", "Gain")
	for _, size := range valueSizes {
		row, err := bench.RunTable6(bench.Table6Opts{
			Options:     baseOptions(),
			RecordBytes: size,
			Appends:     scale(5000),
		})
		if err != nil {
			return err
		}
		fmt.Printf("%7dB %14.1f %14.1f %+9.0f%%\n",
			row.RecordBytes, row.BaseMBps, row.TornbitMBps, row.TornbitGainPc)
		csvOut("table6", "record_bytes,base_mbps,tornbit_mbps,gain_pct",
			row.RecordBytes, row.BaseMBps, row.TornbitMBps, row.TornbitGainPc)
	}
	return nil
}

func figs45() error {
	header("Figures 4 & 5: hashtable write latency and update throughput, MTM vs BDB")
	fmt.Printf("%-8s %8s %8s %14s %14s\n", "System", "Threads", "Value", "Write Lat", "Updates/s")
	for _, threads := range []int{1, 2, 4} {
		for _, size := range valueSizes {
			o := bench.HashOpts{
				Options:      baseOptions(),
				ValueSize:    size,
				Threads:      threads,
				OpsPerThread: scale(2000),
			}
			b, err := bench.RunHashtableBDB(o)
			if err != nil {
				return err
			}
			m, err := bench.RunHashtableMTM(o)
			if err != nil {
				return err
			}
			for _, r := range []bench.HashRow{b, m} {
				fmt.Printf("%-8s %8d %7dB %12.1fus %14.0f\n",
					r.System, r.Threads, r.ValueSize,
					float64(r.WriteLatency.Nanoseconds())/1000, r.UpdatesPerSec)
				csvOut("fig4_fig5", "system,threads,value_bytes,write_latency_ns,updates_per_sec",
					r.System, r.Threads, r.ValueSize,
					r.WriteLatency.Nanoseconds(), r.UpdatesPerSec)
			}
		}
	}
	return nil
}

func fig6() error {
	header("Figure 6: async vs sync truncation, write latency decrease")
	fmt.Printf("%6s %8s %12s %12s %10s\n", "Idle", "Value", "Sync Lat", "Async Lat", "Decrease")
	for _, idle := range []int{90, 50, 10} {
		for _, size := range valueSizes {
			row, err := bench.RunFigure6Cell(idle, size, baseOptions())
			if err != nil {
				return err
			}
			fmt.Printf("%5d%% %7dB %10.1fus %10.1fus %+9.0f%%\n",
				row.IdlePct, row.ValueSize,
				float64(row.SyncLat.Nanoseconds())/1000,
				float64(row.AsyncLat.Nanoseconds())/1000,
				row.DecreasePct)
			csvOut("fig6", "idle_pct,value_bytes,sync_ns,async_ns,decrease_pct",
				row.IdlePct, row.ValueSize, row.SyncLat.Nanoseconds(),
				row.AsyncLat.Nanoseconds(), row.DecreasePct)
		}
	}
	return nil
}

func fig7() error {
	header("Figure 7: sensitivity to SCM write latency (MTM vs BDB, 1 thread)")
	fmt.Printf("%10s %8s %12s %12s %12s\n", "Latency", "Value", "MTM Lat", "BDB Lat", "MTM better")
	for _, lat := range []time.Duration{150 * time.Nanosecond, 1000 * time.Nanosecond, 2000 * time.Nanosecond} {
		for _, size := range valueSizes {
			row, err := bench.RunFigure7Cell(lat, size, baseOptions())
			if err != nil {
				return err
			}
			fmt.Printf("%10v %7dB %10.1fus %10.1fus %+10.0f%%\n",
				row.Latency, row.ValueSize,
				float64(row.MTM.Nanoseconds())/1000,
				float64(row.BDB.Nanoseconds())/1000,
				row.BetterPct)
			csvOut("fig7", "scm_latency_ns,value_bytes,mtm_ns,bdb_ns,mtm_better_pct",
				row.Latency.Nanoseconds(), row.ValueSize,
				row.MTM.Nanoseconds(), row.BDB.Nanoseconds(), row.BetterPct)
		}
	}
	return nil
}

func reincarnation() error {
	header("§6.3.2: reincarnation costs")
	res, err := bench.RunReincarnation(bench.ReincarnationOpts{
		Options:    baseOptions(),
		LiveAllocs: scale(5000),
		PendingTx:  64,
	})
	if err != nil {
		return err
	}
	fmt.Printf("region reconstruction at boot: %12v (%d frames, %v per GB)\n",
		res.ManagerBoot, res.MappedFrames, res.BootPerGB)
	fmt.Printf("remap regions into process:    %12v (%d regions)\n", res.Remap, res.RegionsMapped)
	fmt.Printf("heap scavenge:                 %12v (%d live allocations)\n", res.HeapScavenge, res.LiveAllocs)
	fmt.Printf("transaction replay:            %12v total, %v per tx (%d txs)\n",
		res.ReplayTotal, res.ReplayPerTx, res.TxReplayed)
	return nil
}

func groupCommit() error {
	header("Group commit: fence coalescing across concurrent committers")
	fmt.Printf("%-12s %10s %14s %18s\n", "Mode", "Goroutines", "Updates/s", "Fences/commit")
	rows, err := bench.RunGroupCommit(bench.GroupCommitOpts{
		Options:    baseOptions(),
		Goroutines: 8,
		TxPerG:     scale(400),
	})
	if err != nil {
		return err
	}
	for _, r := range rows {
		fmt.Printf("%-12s %10d %14.0f %18.2f\n",
			r.Mode, r.Goroutines, r.OpsPerSec, r.FencesPerCommit)
		csvOut("groupcommit", "mode,goroutines,updates_per_sec,fences_per_commit",
			r.Mode, r.Goroutines, r.OpsPerSec, r.FencesPerCommit)
	}
	return nil
}

func readMostly() error {
	header("Read-mostly: slot-free snapshot reads vs leased-Atomic baseline (95/5 GET/SET)")
	fmt.Printf("%-8s %10s %14s %14s %14s\n", "Mode", "Goroutines", "Ops/s", "Fences/op", "Leases/op")
	rows, err := bench.RunReadMostly(bench.ReadMostlyOpts{
		Options: baseOptions(),
		OpsPerG: scale(2000),
	})
	if err != nil {
		return err
	}
	for _, r := range rows {
		fmt.Printf("%-8s %10d %14.0f %14.2f %14.2f\n",
			r.Mode, r.Goroutines, r.OpsPerSec, r.FencesPerOp, r.LeasesPerOp)
		csvOut("readmostly", "mode,goroutines,ops_per_sec,fences_per_op,leases_per_op",
			r.Mode, r.Goroutines, r.OpsPerSec, r.FencesPerOp, r.LeasesPerOp)
	}
	return nil
}

func sharded() error {
	header("Sharded: write throughput vs shard count, recovery time vs heap size")
	fmt.Printf("%-7s %10s %16s %12s %15s  %s\n", "Shards", "Goroutines", "Modeled ops/s", "Wall ops/s", "Fences/commit", "Commits/shard")
	rows, err := bench.RunSharded(bench.ShardedOpts{
		Options: baseOptions(),
		OpsPerG: scale(400),
	})
	if err != nil {
		return err
	}
	for _, r := range rows {
		fmt.Printf("%-7d %10d %16.0f %12.0f %15.2f  %v\n",
			r.Shards, r.Goroutines, r.OpsPerSec, r.WallOpsPerSec, r.FencesPerCommit, r.ShardCommits)
		csvOut("sharded", "shards,goroutines,ops_per_sec,wall_ops_per_sec,fences_per_commit",
			r.Shards, r.Goroutines, r.OpsPerSec, r.WallOpsPerSec, r.FencesPerCommit)
		for k, commits := range r.ShardCommits {
			csvOut("sharded_pershard", "shards,shard,commits",
				r.Shards, k, commits)
		}
	}

	fmt.Printf("\n%-9s %7s %8s %14s %15s %16s\n", "Heap", "Shards", "Workers", "Reattach", "Per-shard sum", "Slowest shard")
	recRows, err := bench.RunShardedRecovery(bench.ShardedRecoveryOpts{
		Options: baseOptions(),
	})
	if err != nil {
		return err
	}
	for _, r := range recRows {
		fmt.Printf("%6d MB %7d %8d %14v %15v %16v\n",
			r.HeapMB, r.Shards, r.Workers, r.Recovery.Round(time.Microsecond),
			r.ShardSum.Round(time.Microsecond), r.ShardMax.Round(time.Microsecond))
		csvOut("sharded_recovery", "heap_mb,shards,workers,recovery_ns,shard_sum_ns,shard_max_ns",
			r.HeapMB, r.Shards, r.Workers, r.Recovery.Nanoseconds(), r.ShardSum.Nanoseconds(), r.ShardMax.Nanoseconds())
	}
	return nil
}

func hybrid() error {
	header("Commit modes: redo vs batched undo vs hybrid (fences per commit)")
	fmt.Printf("%-8s %10s %14s %18s %10s\n", "Mode", "Goroutines", "Updates/s", "Fences/commit", "Undo%")
	rows, err := bench.RunHybrid(bench.HybridOpts{
		Options: baseOptions(),
		TxPerG:  scale(400),
	})
	if err != nil {
		return err
	}
	for _, r := range rows {
		fmt.Printf("%-8s %10d %14.0f %18.2f %9.0f%%\n",
			r.Mode, r.Goroutines, r.OpsPerSec, r.FencesPerCommit, r.UndoShare*100)
		csvOut("hybrid", "mode,goroutines,updates_per_sec,fences_per_commit,undo_share",
			r.Mode, r.Goroutines, r.OpsPerSec, r.FencesPerCommit, r.UndoShare)
	}
	return nil
}

func readCache() error {
	header("Read cache: snapshot reads with a volatile read-through cache (95/5 GET/SET)")
	fmt.Printf("%-6s %10s %14s %10s\n", "Cache", "Goroutines", "Ops/s", "Hit rate")
	rows, err := bench.RunReadCache(bench.ReadCacheOpts{
		Options: baseOptions(),
		OpsPerG: scale(2000),
	})
	if err != nil {
		return err
	}
	for _, r := range rows {
		fmt.Printf("%-6s %10d %14.0f %9.1f%%\n",
			r.Cache, r.Goroutines, r.OpsPerSec, r.HitRate*100)
		csvOut("readcache", "cache,goroutines,ops_per_sec,hit_rate",
			r.Cache, r.Goroutines, r.OpsPerSec, r.HitRate)
	}
	return nil
}

func respServe() error {
	header("RESP serving surface: pipelined redis-protocol clients over TCP (50/50 GET/SET, binary values, hashes, TTLs)")
	fmt.Printf("%-8s %8s %14s %18s\n", "Clients", "Window", "Ops/s", "Fences/commit")
	o := baseOptions()
	o.GroupCommit = true // concurrent sessions share commit epochs, as kvserved runs
	for _, window := range []int{1, 8, 32} {
		row, err := bench.RunRESP(bench.RESPOpts{
			Options:      o,
			Window:       window,
			OpsPerClient: scale(2000),
		})
		if err != nil {
			return err
		}
		fmt.Printf("%-8d %8d %14.0f %18.2f\n",
			row.Clients, row.Window, row.OpsPerSec, row.FencesPerCommit)
		csvOut("resp", "clients,window,ops_per_sec,fences_per_commit",
			row.Clients, row.Window, row.OpsPerSec, row.FencesPerCommit)
	}
	return nil
}

func modBackend() error {
	header("MOD shadow updates: single-fence structures vs the mtm hashtable (1 writer)")
	fmt.Printf("%-10s %14s %14s %16s\n", "Backend", "Ops/s", "Fences/op", "Shadow B/op")
	rows, err := bench.RunMod(bench.ModOpts{
		Options: baseOptions(),
		Ops:     scale(2000),
	})
	if err != nil {
		return err
	}
	for _, r := range rows {
		fmt.Printf("%-10s %14.0f %14.3f %16.0f\n",
			r.Backend, r.OpsPerSec, r.FencesPerOp, r.ShadowBytesPerOp)
		csvOut("mod", "backend,ops_per_sec,fences_per_op,shadow_bytes_per_op",
			r.Backend, r.OpsPerSec, r.FencesPerOp, r.ShadowBytesPerOp)
	}
	return nil
}

func ablation() error {
	header("Ablations: transaction-system design choices (64 B and 1024 B values)")
	fmt.Printf("%-14s %8s %12s %14s\n", "Variant", "Value", "Write Lat", "Updates/s")
	for _, size := range []int{64, 1024} {
		for _, v := range bench.AblationVariants {
			row, err := bench.RunAblation(v, size, baseOptions())
			if err != nil {
				return err
			}
			fmt.Printf("%-14s %7dB %10.1fus %14.0f\n",
				row.Variant, row.ValueSize,
				float64(row.WriteLatency.Nanoseconds())/1000, row.UpdatesPerSec)
			csvOut("ablation", "variant,value_bytes,write_latency_ns,updates_per_sec",
				row.Variant, row.ValueSize,
				row.WriteLatency.Nanoseconds(), row.UpdatesPerSec)
		}
	}
	return nil
}
