// Command perfgate compares two mnbench -json documents — a committed
// BENCH_<n>.json baseline and a freshly generated candidate — and fails
// (exit 1) when the candidate regresses the perf trajectory:
//
//   - any phase's p50 latency grows more than 20% over the baseline
//     (with an absolute slack of 5µs, so nanosecond-scale phases don't
//     gate on noise; phases under 100 observations in either run are
//     skipped, as are blocking-dominated phases — p50 over -max-p50-ms,
//     default 100ms, in either run — which measure backpressure waits
//     like lease_wait whose duration is a host-scheduling lottery, not
//     commit-path work)
//   - fences per committed transaction (the sum of the commit path's
//     per-phase fence counters over mtm_commits_total) grows more than
//     20% plus an absolute slack of 0.05
//   - the sharded experiment's aggregate fences/commit (worst cell of
//     the `sharded` rows) grows past the same thresholds
//   - the hybrid experiment's undo-mode fences/commit at one goroutine
//     grows past the same thresholds, and — as an in-document invariant —
//     the candidate's undo mode must stay strictly below its redo mode
//     (the head-to-head the batched undo protocol exists to win)
//   - the read-cache experiment's worst cache-on hit rate drops more than
//     0.10 absolute (an invalidation or sizing regression)
//   - the mod experiment's shadow-update cell must report exactly 1.00
//     fences per mutation (within 0.01) — MOD's whole contract is the
//     single-fence commit, so any drift is a protocol bug, not noise —
//     and must stay strictly below the mtm-redo cell in the same document
//   - any matched sharded recovery cell (same heap size, shard count and
//     worker mode in both documents) slows more than -rec-pct (default
//     50%) plus -rec-slack-ms (default 25ms) — recovery is wall-clock
//     and host-sensitive, so its gate is looser than the phase gates
//
// The sharded, hybrid and read-cache trajectory gates only engage when
// BOTH documents carry the rows, so baselines generated before those
// experiments existed still compare cleanly (the undo-vs-redo and MOD
// single-fence invariants need only the candidate).
//
// Usage:
//
//	perfgate -baseline BENCH_1.json -current bench.json [-pct 20]
//
// Both documents must carry the same schema_version; perfgate refuses to
// compare across schema changes. CI runs it against the latest checked-in
// BENCH_<n>.json, so a PR that slows a commit phase or adds fences to the
// commit path fails visibly instead of silently bending the trajectory.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

// sortedKeys returns the map's keys in stable order, so the gate report
// is deterministic run to run.
func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

var (
	baselinePath = flag.String("baseline", "", "baseline mnbench -json document (e.g. BENCH_1.json)")
	currentPath  = flag.String("current", "", "candidate mnbench -json document to gate")
	pct          = flag.Float64("pct", 20, "relative regression threshold, percent")
	slackNs      = flag.Float64("slack-ns", 5000, "absolute p50 slack in nanoseconds; growth below this never gates")
	minCount     = flag.Int("min-count", 100, "skip phases with fewer observations than this in either run")
	recPct       = flag.Float64("rec-pct", 50, "relative regression threshold for sharded recovery cells, percent")
	recSlackMs   = flag.Float64("rec-slack-ms", 25, "absolute sharded-recovery slack in milliseconds; growth below this never gates")
	maxP50Ms     = flag.Float64("max-p50-ms", 100, "skip phases whose p50 exceeds this in either run — they measure blocking (backpressure waits), not commit-path work")
)

type phaseSummary struct {
	Count  uint64  `json:"count"`
	P50Ns  float64 `json:"p50_ns"`
	P99Ns  float64 `json:"p99_ns"`
	MeanNs float64 `json:"mean_ns"`
	Fences uint64  `json:"fences"`
}

type benchDoc struct {
	SchemaVersion int                      `json:"schema_version"`
	GitCommit     string                   `json:"git_commit"`
	Telemetry     map[string]float64       `json:"telemetry"`
	Phases        map[string]phaseSummary  `json:"phases"`
	Rows          []map[string]interface{} `json:"rows"`
}

// rows filters the document's result rows by experiment name.
func (d *benchDoc) rows(experiment string) []map[string]interface{} {
	var out []map[string]interface{}
	for _, r := range d.Rows {
		if r["experiment"] == experiment {
			out = append(out, r)
		}
	}
	return out
}

// num reads a numeric row column (JSON numbers decode as float64).
func num(row map[string]interface{}, key string) (float64, bool) {
	v, ok := row[key].(float64)
	return v, ok
}

func load(path string) (*benchDoc, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var d benchDoc
	if err := json.Unmarshal(data, &d); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if d.SchemaVersion == 0 {
		return nil, fmt.Errorf("%s: not a versioned mnbench document (no schema_version)", path)
	}
	return &d, nil
}

// fencesPerCommit aggregates the per-phase fence counters into one
// trajectory number. Phase counters (not the scm device gauges, which are
// only registered by the core stack) make this deterministic across bench
// environments: every counted fence is one CountPhaseFence call on the
// commit or truncation path.
func fencesPerCommit(d *benchDoc) (float64, bool) {
	commits := d.Telemetry["mtm_commits_total"]
	if commits <= 0 {
		return 0, false
	}
	var fences uint64
	for _, p := range d.Phases {
		fences += p.Fences
	}
	return float64(fences) / commits, true
}

// shardedFences aggregates the sharded experiment's fences/commit into
// one trajectory number: the worst cell across the shard-count ladder.
// Sharding's promise is that fences/commit stays flat as shards are
// added, so the worst cell is the number a regression would bend.
func shardedFences(d *benchDoc) (float64, bool) {
	worst, ok := 0.0, false
	for _, r := range d.rows("sharded") {
		if f, has := num(r, "fences_per_commit"); has {
			ok = true
			if f > worst {
				worst = f
			}
		}
	}
	return worst, ok
}

// hybridModeFences extracts the hybrid experiment's fences/commit for
// one commit mode at the 1-goroutine cell — the single-writer ordering
// cost each protocol pays, free of group or concurrency effects.
func hybridModeFences(d *benchDoc, mode string) (float64, bool) {
	for _, r := range d.rows("hybrid") {
		if r["mode"] != mode {
			continue
		}
		if g, ok := num(r, "goroutines"); !ok || g != 1 {
			continue
		}
		if f, ok := num(r, "fences_per_commit"); ok {
			return f, true
		}
	}
	return 0, false
}

// modFences extracts the mod experiment's fences-per-mutation for one
// backend cell ("mod", "mtm-redo", "mtm-undo").
func modFences(d *benchDoc, backend string) (float64, bool) {
	for _, r := range d.rows("mod") {
		if r["backend"] != backend {
			continue
		}
		if f, ok := num(r, "fences_per_op"); ok {
			return f, true
		}
	}
	return 0, false
}

// readCacheHitRate returns the worst cache-on cell's hit rate — the
// number an invalidation or sizing regression would sink.
func readCacheHitRate(d *benchDoc) (float64, bool) {
	worst, ok := 1.0, false
	for _, r := range d.rows("readcache") {
		if r["cache"] != "on" {
			continue
		}
		if h, has := num(r, "hit_rate"); has {
			ok = true
			if h < worst {
				worst = h
			}
		}
	}
	return worst, ok
}

// shardedRecovery indexes the sharded recovery sweep by configuration
// cell, so only like-for-like cells (same heap, shards, workers) gate.
func shardedRecovery(d *benchDoc) map[string]float64 {
	cells := map[string]float64{}
	for _, r := range d.rows("sharded_recovery") {
		heap, ok1 := num(r, "heap_mb")
		shards, ok2 := num(r, "shards")
		workers, ok3 := num(r, "workers")
		ns, ok4 := num(r, "recovery_ns")
		if ok1 && ok2 && ok3 && ok4 {
			cells[fmt.Sprintf("%gMB/%gsh/%gw", heap, shards, workers)] = ns
		}
	}
	return cells
}

func main() {
	flag.Parse()
	if *baselinePath == "" || *currentPath == "" {
		fmt.Fprintln(os.Stderr, "perfgate: pass -baseline and -current")
		os.Exit(2)
	}
	base, err := load(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "perfgate: %v\n", err)
		os.Exit(2)
	}
	cur, err := load(*currentPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "perfgate: %v\n", err)
		os.Exit(2)
	}
	if base.SchemaVersion != cur.SchemaVersion {
		fmt.Fprintf(os.Stderr, "perfgate: schema mismatch: baseline v%d vs current v%d\n",
			base.SchemaVersion, cur.SchemaVersion)
		os.Exit(2)
	}
	fmt.Printf("perfgate: baseline %s (%s) vs current %s (%s)\n",
		*baselinePath, base.GitCommit, *currentPath, cur.GitCommit)

	failed := false
	for name, b := range base.Phases {
		c, ok := cur.Phases[name]
		if !ok || b.Count < uint64(*minCount) || c.Count < uint64(*minCount) {
			continue
		}
		if b.P50Ns <= 0 {
			continue
		}
		if b.P50Ns > *maxP50Ms*1e6 || c.P50Ns > *maxP50Ms*1e6 {
			fmt.Printf("skip phase %-14s p50 %8.0fms -> %8.0fms (blocking-dominated; not gated)\n",
				name, b.P50Ns/1e6, c.P50Ns/1e6)
			continue
		}
		growth := (c.P50Ns - b.P50Ns) / b.P50Ns * 100
		if growth > *pct && c.P50Ns-b.P50Ns > *slackNs {
			fmt.Printf("FAIL phase %-14s p50 %8.0fns -> %8.0fns (%+.0f%%, limit %+.0f%%)\n",
				name, b.P50Ns, c.P50Ns, growth, *pct)
			failed = true
		} else {
			fmt.Printf("ok   phase %-14s p50 %8.0fns -> %8.0fns (%+.0f%%)\n",
				name, b.P50Ns, c.P50Ns, growth)
		}
	}

	bf, bok := fencesPerCommit(base)
	cf, cok := fencesPerCommit(cur)
	if bok && cok && bf > 0 {
		growth := (cf - bf) / bf * 100
		if growth > *pct && cf-bf > 0.05 {
			fmt.Printf("FAIL fences/commit %.3f -> %.3f (%+.0f%%, limit %+.0f%%)\n", bf, cf, growth, *pct)
			failed = true
		} else {
			fmt.Printf("ok   fences/commit %.3f -> %.3f (%+.0f%%)\n", bf, cf, growth)
		}
	}

	bsf, bok := shardedFences(base)
	csf, cok := shardedFences(cur)
	if bok && cok && bsf > 0 {
		growth := (csf - bsf) / bsf * 100
		if growth > *pct && csf-bsf > 0.05 {
			fmt.Printf("FAIL sharded fences/commit %.3f -> %.3f (%+.0f%%, limit %+.0f%%)\n", bsf, csf, growth, *pct)
			failed = true
		} else {
			fmt.Printf("ok   sharded fences/commit %.3f -> %.3f (%+.0f%%)\n", bsf, csf, growth)
		}
	}

	bhf, bok := hybridModeFences(base, "undo")
	chf, cok := hybridModeFences(cur, "undo")
	if bok && cok && bhf > 0 {
		growth := (chf - bhf) / bhf * 100
		if growth > *pct && chf-bhf > 0.05 {
			fmt.Printf("FAIL undo fences/commit %.3f -> %.3f (%+.0f%%, limit %+.0f%%)\n", bhf, chf, growth, *pct)
			failed = true
		} else {
			fmt.Printf("ok   undo fences/commit %.3f -> %.3f (%+.0f%%)\n", bhf, chf, growth)
		}
	}
	// In-document invariant rather than a trajectory: the undo path must
	// keep beating sync redo at one goroutine in the candidate itself —
	// the head-to-head the undo protocol exists to win.
	if cu, uok := hybridModeFences(cur, "undo"); uok {
		if cr, rok := hybridModeFences(cur, "redo"); rok {
			if cu >= cr {
				fmt.Printf("FAIL hybrid head-to-head: undo %.3f fences/commit not below redo %.3f\n", cu, cr)
				failed = true
			} else {
				fmt.Printf("ok   hybrid head-to-head: undo %.3f fences/commit below redo %.3f\n", cu, cr)
			}
		}
	}

	// Candidate-only invariants for the MOD backend: the shadow-update
	// protocol's contract is exactly one fence per committed mutation —
	// not a trajectory to track but an identity to hold — and it must
	// beat the transactional redo path it exists to undercut.
	if mf, ok := modFences(cur, "mod"); ok {
		if mf < 0.99 || mf > 1.01 {
			fmt.Printf("FAIL mod single-fence contract: %.3f fences/op (want 1.00 ± 0.01)\n", mf)
			failed = true
		} else {
			fmt.Printf("ok   mod single-fence contract: %.3f fences/op\n", mf)
		}
		if rf, rok := modFences(cur, "mtm-redo"); rok {
			if mf >= rf {
				fmt.Printf("FAIL mod head-to-head: %.3f fences/op not below mtm-redo %.3f\n", mf, rf)
				failed = true
			} else {
				fmt.Printf("ok   mod head-to-head: %.3f fences/op below mtm-redo %.3f\n", mf, rf)
			}
		}
	}

	bhr, bok := readCacheHitRate(base)
	chr, cok := readCacheHitRate(cur)
	if bok && cok {
		if drop := bhr - chr; drop > 0.10 {
			fmt.Printf("FAIL readcache hit rate %.2f -> %.2f (dropped %.2f, limit 0.10)\n", bhr, chr, drop)
			failed = true
		} else {
			fmt.Printf("ok   readcache hit rate %.2f -> %.2f\n", bhr, chr)
		}
	}

	brec, crec := shardedRecovery(base), shardedRecovery(cur)
	for _, cell := range sortedKeys(brec) {
		bns := brec[cell]
		cns, ok := crec[cell]
		if !ok || bns <= 0 {
			continue
		}
		growth := (cns - bns) / bns * 100
		if growth > *recPct && cns-bns > *recSlackMs*1e6 {
			fmt.Printf("FAIL sharded recovery %-14s %8.1fms -> %8.1fms (%+.0f%%, limit %+.0f%%)\n",
				cell, bns/1e6, cns/1e6, growth, *recPct)
			failed = true
		} else {
			fmt.Printf("ok   sharded recovery %-14s %8.1fms -> %8.1fms (%+.0f%%)\n",
				cell, bns/1e6, cns/1e6, growth)
		}
	}

	if failed {
		fmt.Println("perfgate: REGRESSION — commit-phase latency or fence trajectory got worse")
		os.Exit(1)
	}
	fmt.Println("perfgate: green")
}
