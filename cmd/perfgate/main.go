// Command perfgate compares two mnbench -json documents — a committed
// BENCH_<n>.json baseline and a freshly generated candidate — and fails
// (exit 1) when the candidate regresses the perf trajectory:
//
//   - any phase's p50 latency grows more than 20% over the baseline
//     (with an absolute slack of 5µs, so nanosecond-scale phases don't
//     gate on noise; phases under 100 observations in either run are
//     skipped)
//   - fences per committed transaction (the sum of the commit path's
//     per-phase fence counters over mtm_commits_total) grows more than
//     20% plus an absolute slack of 0.05
//
// Usage:
//
//	perfgate -baseline BENCH_1.json -current bench.json [-pct 20]
//
// Both documents must carry the same schema_version; perfgate refuses to
// compare across schema changes. CI runs it against the latest checked-in
// BENCH_<n>.json, so a PR that slows a commit phase or adds fences to the
// commit path fails visibly instead of silently bending the trajectory.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

var (
	baselinePath = flag.String("baseline", "", "baseline mnbench -json document (e.g. BENCH_1.json)")
	currentPath  = flag.String("current", "", "candidate mnbench -json document to gate")
	pct          = flag.Float64("pct", 20, "relative regression threshold, percent")
	slackNs      = flag.Float64("slack-ns", 5000, "absolute p50 slack in nanoseconds; growth below this never gates")
	minCount     = flag.Int("min-count", 100, "skip phases with fewer observations than this in either run")
)

type phaseSummary struct {
	Count  uint64  `json:"count"`
	P50Ns  float64 `json:"p50_ns"`
	P99Ns  float64 `json:"p99_ns"`
	MeanNs float64 `json:"mean_ns"`
	Fences uint64  `json:"fences"`
}

type benchDoc struct {
	SchemaVersion int                     `json:"schema_version"`
	GitCommit     string                  `json:"git_commit"`
	Telemetry     map[string]float64      `json:"telemetry"`
	Phases        map[string]phaseSummary `json:"phases"`
}

func load(path string) (*benchDoc, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var d benchDoc
	if err := json.Unmarshal(data, &d); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if d.SchemaVersion == 0 {
		return nil, fmt.Errorf("%s: not a versioned mnbench document (no schema_version)", path)
	}
	return &d, nil
}

// fencesPerCommit aggregates the per-phase fence counters into one
// trajectory number. Phase counters (not the scm device gauges, which are
// only registered by the core stack) make this deterministic across bench
// environments: every counted fence is one CountPhaseFence call on the
// commit or truncation path.
func fencesPerCommit(d *benchDoc) (float64, bool) {
	commits := d.Telemetry["mtm_commits_total"]
	if commits <= 0 {
		return 0, false
	}
	var fences uint64
	for _, p := range d.Phases {
		fences += p.Fences
	}
	return float64(fences) / commits, true
}

func main() {
	flag.Parse()
	if *baselinePath == "" || *currentPath == "" {
		fmt.Fprintln(os.Stderr, "perfgate: pass -baseline and -current")
		os.Exit(2)
	}
	base, err := load(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "perfgate: %v\n", err)
		os.Exit(2)
	}
	cur, err := load(*currentPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "perfgate: %v\n", err)
		os.Exit(2)
	}
	if base.SchemaVersion != cur.SchemaVersion {
		fmt.Fprintf(os.Stderr, "perfgate: schema mismatch: baseline v%d vs current v%d\n",
			base.SchemaVersion, cur.SchemaVersion)
		os.Exit(2)
	}
	fmt.Printf("perfgate: baseline %s (%s) vs current %s (%s)\n",
		*baselinePath, base.GitCommit, *currentPath, cur.GitCommit)

	failed := false
	for name, b := range base.Phases {
		c, ok := cur.Phases[name]
		if !ok || b.Count < uint64(*minCount) || c.Count < uint64(*minCount) {
			continue
		}
		if b.P50Ns <= 0 {
			continue
		}
		growth := (c.P50Ns - b.P50Ns) / b.P50Ns * 100
		if growth > *pct && c.P50Ns-b.P50Ns > *slackNs {
			fmt.Printf("FAIL phase %-14s p50 %8.0fns -> %8.0fns (%+.0f%%, limit %+.0f%%)\n",
				name, b.P50Ns, c.P50Ns, growth, *pct)
			failed = true
		} else {
			fmt.Printf("ok   phase %-14s p50 %8.0fns -> %8.0fns (%+.0f%%)\n",
				name, b.P50Ns, c.P50Ns, growth)
		}
	}

	bf, bok := fencesPerCommit(base)
	cf, cok := fencesPerCommit(cur)
	if bok && cok && bf > 0 {
		growth := (cf - bf) / bf * 100
		if growth > *pct && cf-bf > 0.05 {
			fmt.Printf("FAIL fences/commit %.3f -> %.3f (%+.0f%%, limit %+.0f%%)\n", bf, cf, growth, *pct)
			failed = true
		} else {
			fmt.Printf("ok   fences/commit %.3f -> %.3f (%+.0f%%)\n", bf, cf, growth)
		}
	}

	if failed {
		fmt.Println("perfgate: REGRESSION — commit-phase latency or fence trajectory got worse")
		os.Exit(1)
	}
	fmt.Println("perfgate: green")
}
