package mnemosyne_test

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	mnemosyne "repro"
)

func testPM(t *testing.T, cfg mnemosyne.Config) *mnemosyne.PM {
	t.Helper()
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	if cfg.DeviceSize == 0 {
		cfg.DeviceSize = 128 << 20
	}
	pm, err := mnemosyne.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return pm
}

func TestFacadeStaticAndTransaction(t *testing.T) {
	pm := testPM(t, mnemosyne.Config{})
	counter, created, err := pm.Static("t.counter", 8)
	if err != nil {
		t.Fatal(err)
	}
	if !created {
		t.Fatal("fresh instance should create the static")
	}
	for i := 0; i < 10; i++ {
		if err := pm.Atomic(func(tx *mnemosyne.Tx) error {
			tx.StoreU64(counter, tx.LoadU64(counter)+1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if got := pm.Memory().LoadU64(counter); got != 10 {
		t.Fatalf("counter = %d", got)
	}
}

func TestFacadeCrashAndAttach(t *testing.T) {
	dir := t.TempDir()
	cfg := mnemosyne.Config{Dir: dir, DeviceSize: 128 << 20}
	pm := testPM(t, cfg)

	root, _, err := pm.Static("t.tree", 8)
	if err != nil {
		t.Fatal(err)
	}
	tree := mnemosyne.NewBPTree(root)
	th, err := pm.NewThread()
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 200; i++ {
		if err := th.Atomic(func(tx *mnemosyne.Tx) error {
			return tree.Put(tx, i, []byte(fmt.Sprintf("v%d", i)))
		}); err != nil {
			t.Fatal(err)
		}
	}

	dev := pm.Device()
	dev.Crash(mnemosyne.RandomCrash(3))
	if err := pm.Runtime().Close(); err != nil {
		t.Fatal(err)
	}
	pm2, err := mnemosyne.Attach(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	th2, err := pm2.NewThread()
	if err != nil {
		t.Fatal(err)
	}
	tree2 := mnemosyne.NewBPTree(root)
	if err := th2.Atomic(func(tx *mnemosyne.Tx) error {
		for i := uint64(0); i < 200; i++ {
			v, err := tree2.Get(tx, i)
			if err != nil || string(v) != fmt.Sprintf("v%d", i) {
				return fmt.Errorf("key %d after crash: %q %v", i, v, err)
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeDeviceImagePersistsAcrossProcessRestart(t *testing.T) {
	dir := t.TempDir()
	img := filepath.Join(dir, "scm.img")
	cfg := mnemosyne.Config{DevicePath: img, Dir: dir, DeviceSize: 64 << 20}

	pm := testPM(t, cfg)
	addr, _, err := pm.Static("t.persist", 8)
	if err != nil {
		t.Fatal(err)
	}
	mnemosyne.StoreDurable(pm.Memory(), addr, 0xfeedface)
	if err := pm.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(img); err != nil {
		t.Fatalf("image not written: %v", err)
	}

	pm2 := testPM(t, cfg)
	addr2, created, err := pm2.Static("t.persist", 8)
	if err != nil {
		t.Fatal(err)
	}
	if created || addr2 != addr {
		t.Fatalf("static not reincarnated: created=%v addr %v vs %v", created, addr2, addr)
	}
	if got := pm2.Memory().LoadU64(addr2); got != 0xfeedface {
		t.Fatalf("value = %#x", got)
	}
	if err := pm2.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeLogRoundTrip(t *testing.T) {
	pm := testPM(t, mnemosyne.Config{})
	log, err := pm.CreateLog("t.log", 1024)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := log.Append([]uint64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	log.Flush()
	pm.Device().Crash(mnemosyne.DropAll)
	_, recs, err := pm.OpenLog("t.log")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || len(recs[0]) != 3 || recs[0][2] != 3 {
		t.Fatalf("recovered %v", recs)
	}
	if _, err := pm.CreateLog("t.log", 1024); err == nil {
		t.Fatal("recreating an existing log should fail")
	}
	if _, _, err := pm.OpenLog("t.noexist"); err == nil {
		t.Fatal("opening a missing log should fail")
	}
}

func TestFacadeShadowUpdate(t *testing.T) {
	pm := testPM(t, mnemosyne.Config{})
	ref, _, err := pm.Static("t.ref", 8)
	if err != nil {
		t.Fatal(err)
	}
	region, err := pm.PMap(4096)
	if err != nil {
		t.Fatal(err)
	}
	mem := pm.Memory()
	mnemosyne.ShadowUpdate(mem, ref, uint64(region), func(m mnemosyne.Memory) {
		m.WTStoreU64(region, 111)
		m.WTStoreU64(region.Add(8), 222)
	})
	pm.Device().Crash(mnemosyne.DropAll)
	if got := mnemosyne.Addr(mem.LoadU64(ref)); got != region {
		t.Fatalf("reference = %v", got)
	}
	if mem.LoadU64(region) != 111 || mem.LoadU64(region.Add(8)) != 222 {
		t.Fatal("shadow data lost")
	}
}

func TestFacadeAllocator(t *testing.T) {
	pm := testPM(t, mnemosyne.Config{})
	ptr, _, err := pm.Static("t.ptr", 8)
	if err != nil {
		t.Fatal(err)
	}
	alloc := pm.Allocator()
	block, err := alloc.PMalloc(1024, ptr)
	if err != nil {
		t.Fatal(err)
	}
	if block == mnemosyne.Nil {
		t.Fatal("nil block")
	}
	if err := alloc.PFree(ptr); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeCollect(t *testing.T) {
	pm := testPM(t, mnemosyne.Config{})
	slots, _, err := pm.Static("t.gcslots", 8*16)
	if err != nil {
		t.Fatal(err)
	}
	alloc := pm.Allocator()
	for i := int64(0); i < 16; i++ {
		if _, err := alloc.PMalloc(128, slots.Add(i*8)); err != nil {
			t.Fatal(err)
		}
	}
	// Orphan half.
	mem := pm.Memory()
	for i := int64(8); i < 16; i++ {
		mnemosyne.StoreDurable(mem, slots.Add(i*8), 0)
	}
	rep, err := pm.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Freed != 8 {
		t.Fatalf("collected %d blocks, want 8 (report %+v)", rep.Freed, rep)
	}
	// Survivors intact.
	for i := int64(0); i < 8; i++ {
		if err := alloc.PFree(slots.Add(i * 8)); err != nil {
			t.Fatalf("survivor %d: %v", i, err)
		}
	}
}
