// Package mnemosyne is a Go reproduction of "Mnemosyne: Lightweight
// Persistent Memory" (Volos, Tack, Swift — ASPLOS 2011): a programming
// interface for storage-class memory exposing persistent regions,
// persistence primitives, a persistent heap, tornbit raw word logs, and
// durable memory transactions, over a software SCM emulator with the
// paper's performance and failure model.
//
// # Quick start
//
//	pm, err := mnemosyne.Open(mnemosyne.Config{
//		DevicePath: "scm.img",  // survive process restarts
//		Dir:        "./pmem",   // region backing files
//	})
//	...
//	counter, created, _ := pm.Static("counter", 8) // a pstatic variable
//	mem := pm.Memory()
//	if created {
//		mnemosyne.StoreDurable(mem, counter, 0)
//	}
//	_ = pm.Atomic(func(tx *mnemosyne.Tx) error {
//		tx.StoreU64(counter, tx.LoadU64(counter)+1)
//		return nil
//	})
//	_ = pm.Close()
//
// Persistent data is addressed with Addr values inside a reserved 1 TB
// virtual range, never with Go pointers: the garbage collector cannot
// trace a persistent heap, and the Addr type statically separates
// persistent references from volatile ones (the paper's `persistent`
// annotation). Durable transactions (Thread.Atomic) give atomic, durable,
// isolated in-place updates to anything in persistent memory; package
// internal/pds builds hash tables and trees on top of them.
//
// Crash behaviour follows the paper's failure model: writes are volatile
// in the emulated cache and write-combining buffers until flushed/fenced;
// Device().Crash(policy) simulates a power failure that loses a subset of
// in-flight writes, and re-Attach()ing recovers — replaying committed
// transactions and rolling partially created state back.
package mnemosyne

import (
	"repro/internal/core"
	"repro/internal/mtm"
	"repro/internal/pgc"
	"repro/internal/pheap"
	"repro/internal/pmem"
	"repro/internal/rawl"
	"repro/internal/region"
	"repro/internal/scm"
	"repro/internal/shard"
)

// Config assembles a persistent-memory instance. See core.Config.
type Config = core.Config

// PM is an open persistent-memory instance.
type PM = core.PM

// Addr is an address in persistent memory. Nil is the persistent null.
type Addr = pmem.Addr

// Nil is the persistent null address.
const Nil = pmem.Nil

// Base is the start of the reserved persistent address range.
const Base = pmem.Base

// Memory is the persistence-primitive interface: Load/Store/WTStore/
// Flush/Fence at persistent addresses (Table 3 of the paper).
type Memory = pmem.Memory

// Thread is a per-goroutine durable-transaction context.
type Thread = mtm.Thread

// Tx is an executing durable memory transaction.
type Tx = mtm.Tx

// ReadTx is an executing slot-free snapshot read transaction (TM.View /
// PM.View): optimistic reads against the commit clock with no thread
// lease, no log record and no fence, so unbounded readers run in
// parallel with writers.
type ReadTx = mtm.ReadTx

// Reader is the transactional read interface implemented by both Tx and
// ReadTx. Read-side code written against Reader runs identically inside
// Atomic and View.
type Reader = mtm.Reader

// Writer is the full transactional interface — Reader plus transactional
// stores — implemented by Tx only.
type Writer = mtm.Writer

// ThreadPool leases transaction threads against the instance's Threads
// bound (PM.ThreadPool).
type ThreadPool = core.ThreadPool

// TM is the durable-transaction system (PM.TM), for callers that need
// thread leasing or recovery state below the PM convenience surface.
type TM = mtm.TM

// TMConfig configures a transaction system opened directly over a region
// runtime (servers embedding their own stack use core.Config instead).
type TMConfig = mtm.Config

// TMStats is a point-in-time snapshot of transaction-system counters.
type TMStats = mtm.StatsSnapshot

// Allocator is a persistent-heap handle (pmalloc/pfree).
type Allocator = pheap.Allocator

// Log is a tornbit raw word log.
type Log = rawl.Log

// Device is the emulated SCM device.
type Device = scm.Device

// Mem is the concrete per-goroutine Memory implementation.
type Mem = region.Mem

// GCReport summarizes a persistent-heap garbage collection (PM.Collect).
type GCReport = pgc.Report

// Open creates or reincarnates a persistent-memory instance.
func Open(cfg Config) (*PM, error) { return core.Open(cfg) }

// Attach rebuilds the stack over an existing device, e.g. after a
// simulated crash.
func Attach(dev *Device, cfg Config) (*PM, error) { return core.Attach(dev, cfg) }

// ShardedConfig assembles a sharded store: N fully independent PM
// instances behind one key-value front end. The embedded Config applies
// per shard.
type ShardedConfig = shard.Config

// ShardedStore routes a key-value workload across independent PM shards,
// with atomic cross-shard MSET and concurrent per-shard recovery.
type ShardedStore = shard.Store

// OpenSharded creates or reincarnates a sharded store. Shards: 0 or 1
// opens a single instance laid out exactly like Open, so existing images
// remain drop-in; larger counts add one full Mnemosyne stack per shard.
func OpenSharded(cfg ShardedConfig) (*ShardedStore, error) { return shard.Open(cfg) }

// AttachSharded rebuilds a sharded store over existing devices (one per
// shard), e.g. after a simulated crash.
func AttachSharded(devs []*Device, cfg ShardedConfig) (*ShardedStore, error) {
	return shard.Attach(devs, cfg)
}

// StoreDurable atomically and durably updates a single persistent 64-bit
// variable (a single-variable consistent update).
func StoreDurable(m Memory, a Addr, v uint64) { pmem.StoreDurable(m, a, v) }

// ShadowUpdate performs a shadow update: write new data, fence, then
// atomically swing the reference.
func ShadowUpdate(m Memory, ref Addr, newVal uint64, writeNew func(Memory)) {
	pmem.ShadowUpdate(m, ref, newVal, writeNew)
}

// PublishRange flushes and fences [a, a+n), completing a batch of
// cacheable stores.
func PublishRange(m Memory, a Addr, n int64) { pmem.PublishRange(m, a, n) }

// Crash policies for Device.Crash, re-exported for tests and examples.
var (
	// DropAll loses every unpersisted write.
	DropAll scm.CrashPolicy = scm.DropAll{}
	// KeepAll persists every in-flight write.
	KeepAll scm.CrashPolicy = scm.KeepAll{}
)

// RandomCrash returns a reproducible random crash policy: each in-flight
// write survives independently with probability 1/2.
func RandomCrash(seed int64) scm.CrashPolicy { return scm.NewRandomPolicy(seed) }
