// Benchmarks regenerating the paper's tables and figures as testing.B
// benchmarks. Each wraps an experiment kernel from internal/bench with the
// paper's emulation parameters (150 ns extra write latency, 4 GB/s write
// bandwidth, spin-realized). ns/op is the wall time of one whole kernel
// run; the paper-comparable numbers are the custom metrics.
//
// cmd/mnbench runs the same kernels over the full parameter sweeps and
// prints paper-style tables.
package mnemosyne_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/bench"
)

func spinOpts() bench.Options { return bench.Options{Spin: true} }

// BenchmarkTable4LDAP reproduces Table 4's OpenLDAP rows: update
// throughput of the three backends under the SLAMD-like add workload.
func BenchmarkTable4LDAP(b *testing.B) {
	for _, backend := range []string{"bdb", "ldbm", "mnemosyne"} {
		b.Run(backend, func(b *testing.B) {
			var last bench.LDAPRow
			for i := 0; i < b.N; i++ {
				row, err := bench.RunLDAP(bench.LDAPOpts{
					Options: spinOpts(), Backend: backend, Threads: 16, Entries: 2000,
				})
				if err != nil {
					b.Fatal(err)
				}
				last = row
			}
			b.ReportMetric(last.UpdatesPS, "updates/s")
		})
	}
}

// BenchmarkTable4TokyoCabinet reproduces Table 4's Tokyo Cabinet rows:
// msync-per-update vs durable transactions at 64 B and 1024 B values.
func BenchmarkTable4TokyoCabinet(b *testing.B) {
	for _, mode := range []string{"msync", "mnemosyne"} {
		for _, size := range []int{64, 1024} {
			b.Run(fmt.Sprintf("%s/%dB", mode, size), func(b *testing.B) {
				var last bench.TCRow
				for i := 0; i < b.N; i++ {
					row, err := bench.RunTC(bench.TCOpts{
						Options: spinOpts(), Mode: mode, ValueSize: size, Ops: 1500,
					})
					if err != nil {
						b.Fatal(err)
					}
					last = row
				}
				b.ReportMetric(last.UpdatesPS, "updates/s")
			})
		}
	}
}

// BenchmarkTable5Serialization reproduces Table 5: red-black tree updates
// with durable transactions vs whole-tree Boost-style serialization.
// cmd/mnbench sweeps up to the paper's 256K nodes.
func BenchmarkTable5Serialization(b *testing.B) {
	for _, size := range []int{1 << 10, 8 << 10} {
		b.Run(fmt.Sprintf("%dnodes", size), func(b *testing.B) {
			var last bench.Table5Row
			for i := 0; i < b.N; i++ {
				row, err := bench.RunTable5(bench.Table5Opts{
					Options: spinOpts(), TreeSize: size, MeasuredInserts: 200,
				})
				if err != nil {
					b.Fatal(err)
				}
				last = row
			}
			b.ReportMetric(float64(last.InsertLatency.Nanoseconds()), "ns/insert")
			b.ReportMetric(float64(last.SerializeLatency.Nanoseconds()), "ns/serialize")
			b.ReportMetric(last.InsertsPerSerialization, "inserts/serialization")
		})
	}
}

// BenchmarkTable6RAWL reproduces Table 6: base (commit-record, two
// fences) vs tornbit (one fence) log throughput across record sizes.
func BenchmarkTable6RAWL(b *testing.B) {
	for _, size := range []int{8, 64, 256, 1024, 2048, 4096} {
		b.Run(fmt.Sprintf("%dB", size), func(b *testing.B) {
			var last bench.Table6Row
			for i := 0; i < b.N; i++ {
				row, err := bench.RunTable6(bench.Table6Opts{
					Options: spinOpts(), RecordBytes: size, Appends: 3000,
				})
				if err != nil {
					b.Fatal(err)
				}
				last = row
			}
			b.ReportMetric(last.BaseMBps, "base-MB/s")
			b.ReportMetric(last.TornbitMBps, "tornbit-MB/s")
		})
	}
}

// BenchmarkFig4WriteLatency reproduces Figure 4 (hashtable write latency,
// Mnemosyne transactions vs Berkeley DB) on a representative sub-grid.
func BenchmarkFig4WriteLatency(b *testing.B) {
	for _, sys := range []string{"MTM", "BDB"} {
		for _, threads := range []int{1, 4} {
			for _, size := range []int{64, 1024, 4096} {
				b.Run(fmt.Sprintf("%s/%dT/%dB", sys, threads, size), func(b *testing.B) {
					var last bench.HashRow
					for i := 0; i < b.N; i++ {
						o := bench.HashOpts{
							Options: spinOpts(), ValueSize: size,
							Threads: threads, OpsPerThread: 1000,
						}
						var row bench.HashRow
						var err error
						if sys == "MTM" {
							row, err = bench.RunHashtableMTM(o)
						} else {
							row, err = bench.RunHashtableBDB(o)
						}
						if err != nil {
							b.Fatal(err)
						}
						last = row
					}
					b.ReportMetric(float64(last.WriteLatency.Nanoseconds()), "ns/write")
				})
			}
		}
	}
}

// BenchmarkFig5Throughput reproduces Figure 5 (aggregate update
// throughput and its scaling with threads).
func BenchmarkFig5Throughput(b *testing.B) {
	for _, sys := range []string{"MTM", "BDB"} {
		for _, threads := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("%s/%dT", sys, threads), func(b *testing.B) {
				var last bench.HashRow
				for i := 0; i < b.N; i++ {
					o := bench.HashOpts{
						Options: spinOpts(), ValueSize: 64,
						Threads: threads, OpsPerThread: 1000,
					}
					var row bench.HashRow
					var err error
					if sys == "MTM" {
						row, err = bench.RunHashtableMTM(o)
					} else {
						row, err = bench.RunHashtableBDB(o)
					}
					if err != nil {
						b.Fatal(err)
					}
					last = row
				}
				b.ReportMetric(last.UpdatesPerSec, "updates/s")
			})
		}
	}
}

// BenchmarkFig6AsyncTruncation reproduces Figure 6: the write-latency
// change from asynchronous log truncation at different duty cycles.
func BenchmarkFig6AsyncTruncation(b *testing.B) {
	for _, idle := range []int{90, 50, 10} {
		b.Run(fmt.Sprintf("%didle", idle), func(b *testing.B) {
			var last bench.Figure6Row
			for i := 0; i < b.N; i++ {
				row, err := bench.RunFigure6Cell(idle, 1024, spinOpts())
				if err != nil {
					b.Fatal(err)
				}
				last = row
			}
			b.ReportMetric(float64(last.SyncLat.Nanoseconds()), "ns/sync-write")
			b.ReportMetric(float64(last.AsyncLat.Nanoseconds()), "ns/async-write")
			b.ReportMetric(last.DecreasePct, "latency-decrease-%")
		})
	}
}

// BenchmarkFig7LatencySensitivity reproduces Figure 7: Mnemosyne's
// advantage over Berkeley DB as SCM write latency grows.
func BenchmarkFig7LatencySensitivity(b *testing.B) {
	for _, lat := range []time.Duration{150 * time.Nanosecond, 1000 * time.Nanosecond, 2000 * time.Nanosecond} {
		for _, size := range []int{64, 1024} {
			b.Run(fmt.Sprintf("%v/%dB", lat, size), func(b *testing.B) {
				var last bench.Figure7Row
				for i := 0; i < b.N; i++ {
					row, err := bench.RunFigure7Cell(lat, size, spinOpts())
					if err != nil {
						b.Fatal(err)
					}
					last = row
				}
				b.ReportMetric(last.BetterPct, "mtm-better-%")
			})
		}
	}
}

// BenchmarkReincarnation reproduces §6.3.2: region reconstruction at
// boot, region remap, heap scavenge and transaction replay.
func BenchmarkReincarnation(b *testing.B) {
	var last bench.ReincarnationResult
	for i := 0; i < b.N; i++ {
		res, err := bench.RunReincarnation(bench.ReincarnationOpts{
			Options: spinOpts(), LiveAllocs: 5000, PendingTx: 64,
		})
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(float64(last.BootPerGB.Milliseconds()), "boot-ms/GB")
	b.ReportMetric(float64(last.Remap.Microseconds()), "remap-us")
	b.ReportMetric(float64(last.HeapScavenge.Microseconds()), "scavenge-us")
	if last.TxReplayed > 0 {
		b.ReportMetric(float64(last.ReplayPerTx.Nanoseconds()), "ns/replayed-tx")
	}
}

// BenchmarkAblationUndoVsRedo and friends quantify the design choices the
// paper argues for in §5.
func BenchmarkAblationUndoVsRedo(b *testing.B) {
	for _, v := range []string{"redo", "undo"} {
		b.Run(v, func(b *testing.B) { runAblation(b, v) })
	}
}

// BenchmarkAblationWriteback compares store+flush write-back against
// streaming write-through write-back at commit.
func BenchmarkAblationWriteback(b *testing.B) {
	for _, v := range []string{"redo", "wt-writeback"} {
		b.Run(v, func(b *testing.B) { runAblation(b, v) })
	}
}

// BenchmarkAblationTruncation compares synchronous and asynchronous log
// truncation on the unthrottled workload.
func BenchmarkAblationTruncation(b *testing.B) {
	for _, v := range []string{"redo", "async"} {
		b.Run(v, func(b *testing.B) { runAblation(b, v) })
	}
}

func runAblation(b *testing.B, variant string) {
	var last bench.AblationRow
	for i := 0; i < b.N; i++ {
		row, err := bench.RunAblation(variant, 1024, spinOpts())
		if err != nil {
			b.Fatal(err)
		}
		last = row
	}
	b.ReportMetric(float64(last.WriteLatency.Nanoseconds()), "ns/write")
	b.ReportMetric(last.UpdatesPerSec, "updates/s")
}

// BenchmarkReadMostly compares the slot-free snapshot-read path against
// the leased-Atomic baseline on a 95/5 GET/SET B+ tree mix, across the
// concurrency ladder, with Slots=32. The paper-comparable number is
// ops/s: past the slot bound the baseline serializes on thread leases
// while View readers keep scaling.
func BenchmarkReadMostly(b *testing.B) {
	for _, mode := range []string{"atomic", "view"} {
		for _, g := range []int{1, 8, 32, 128} {
			b.Run(fmt.Sprintf("%s/%dg", mode, g), func(b *testing.B) {
				var last bench.ReadMostlyRow
				for i := 0; i < b.N; i++ {
					row, err := bench.RunReadMostlyCell(bench.ReadMostlyOpts{
						Options: spinOpts(), Mode: mode, Goroutines: g, OpsPerG: 500,
					})
					if err != nil {
						b.Fatal(err)
					}
					last = row
				}
				b.ReportMetric(last.OpsPerSec, "ops/s")
				b.ReportMetric(last.FencesPerOp, "fences/op")
				b.ReportMetric(last.LeasesPerOp, "leases/op")
			})
		}
	}
}

// BenchmarkRESPServe measures the redis-protocol serving surface end to
// end: pipelined RESP clients over TCP driving the command engine with a
// 50/50 GET/SET mix (binary values, hashes, EX deadlines). The
// paper-comparable number is ops/s; fences/commit shows how the window
// amortizes durability.
func BenchmarkRESPServe(b *testing.B) {
	for _, window := range []int{1, 32} {
		b.Run(fmt.Sprintf("window%d", window), func(b *testing.B) {
			var last bench.RESPRow
			for i := 0; i < b.N; i++ {
				opts := spinOpts()
				opts.GroupCommit = true
				row, err := bench.RunRESP(bench.RESPOpts{
					Options: opts, Window: window, OpsPerClient: 500,
				})
				if err != nil {
					b.Fatal(err)
				}
				last = row
			}
			b.ReportMetric(last.OpsPerSec, "ops/s")
			b.ReportMetric(last.FencesPerCommit, "fences/commit")
		})
	}
}

// BenchmarkModCommit prices one committed mutation on the MOD
// shadow-update map against the transactional hash table under redo,
// both driven through the shared pds.Map interface. The
// paper-comparable numbers are fences/op (MOD's contract: exactly 1)
// and the shadow bytes each copy-on-write path costs.
func BenchmarkModCommit(b *testing.B) {
	for _, backend := range []string{"mod", "mtm-redo"} {
		b.Run(backend, func(b *testing.B) {
			var last bench.ModRow
			for i := 0; i < b.N; i++ {
				row, err := bench.RunModCell(bench.ModOpts{
					Options: spinOpts(), Ops: 1000,
				}, backend)
				if err != nil {
					b.Fatal(err)
				}
				last = row
			}
			b.ReportMetric(last.OpsPerSec, "ops/s")
			b.ReportMetric(last.FencesPerOp, "fences/op")
			b.ReportMetric(last.ShadowBytesPerOp, "shadowB/op")
		})
	}
}
