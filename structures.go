package mnemosyne

import (
	"repro/internal/pds"
)

// Persistent data structures built on durable transactions, re-exported
// from internal/pds: the paper's microbenchmark hash table, the OpenLDAP
// conversion's AVL tree, the Tokyo Cabinet conversion's B+ tree, and the
// serialization comparison's red-black tree.

// ErrNotFound reports a lookup or delete of an absent key in any of the
// persistent data structures.
var ErrNotFound = pds.ErrNotFound

// HashTable is a persistent chained hash table (uint64 keys, byte-slice
// values).
type HashTable = pds.HashTable

// AVL is a persistent AVL tree (byte-string keys, byte-slice values).
type AVL = pds.AVL

// BPTree is a persistent B+ tree (uint64 keys, byte-slice values).
type BPTree = pds.BPTree

// RBTree is a persistent red-black tree with 128-byte nodes.
type RBTree = pds.RBTree

// CreateHashTable allocates a hash table with nbuckets chains, rooted at
// the persistent pointer rootPtr.
func CreateHashTable(th *Thread, rootPtr Addr, nbuckets int) (*HashTable, error) {
	return pds.CreateHashTable(th, rootPtr, nbuckets)
}

// OpenHashTable attaches to the hash table rooted at rootPtr. Any Reader
// works: a writing Tx or a snapshot ReadTx.
func OpenHashTable(tx Reader, rootPtr Addr) (*HashTable, error) {
	return pds.OpenHashTable(tx, rootPtr)
}

// NewAVL wraps the AVL tree rooted at the persistent pointer rootPtr
// (Nil means empty).
func NewAVL(rootPtr Addr) *AVL { return pds.NewAVL(rootPtr) }

// NewBPTree wraps the B+ tree rooted at rootPtr (Nil means empty).
func NewBPTree(rootPtr Addr) *BPTree { return pds.NewBPTree(rootPtr) }

// NewRBTree wraps the red-black tree rooted at rootPtr (Nil means empty).
func NewRBTree(rootPtr Addr) *RBTree { return pds.NewRBTree(rootPtr) }

// ---------------------------------------------------------------------
// Backend-selectable interface layer. The constructors above are the
// historical per-structure surface; the redesigned API puts every
// structure behind Map / OrderedMap / Queue and a Backend selector, so
// callers choose the persistence strategy — transactional in-place
// updates (BackendMTM) or single-fence shadow updates (BackendMOD, the
// MOD minimally-ordered durable structures) — without changing call
// sites.

// Backend selects the persistence strategy of a pds structure.
type Backend = pds.Backend

const (
	// BackendMTM updates structures in place inside mtm transactions.
	BackendMTM = pds.BackendMTM
	// BackendMOD shadow-updates structures: copy-on-write paths, one
	// fence per mutation, commit by root-pointer swap.
	BackendMOD = pds.BackendMOD
)

// ParseBackend parses a backend name ("mtm" or "mod"), for flags.
func ParseBackend(s string) (Backend, error) { return pds.ParseBackend(s) }

// StructEnv bundles the runtime handles the backend constructors need;
// see pds.Env for which fields each backend reads.
type StructEnv = pds.Env

// Map is a backend-agnostic unordered persistent map (uint64 keys).
type Map = pds.Map

// OrderedMap is a backend-agnostic persistent map with ordered scans.
type OrderedMap = pds.OrderedMap

// PQueue is a backend-agnostic persistent FIFO queue.
type PQueue = pds.Queue

// RingQueue is the fixed-geometry persistent ring built directly on the
// persistence primitives (the paper's append-update method).
type RingQueue = pds.RingQueue

// NewMap returns a Map over the root cell rootPtr on the chosen backend.
func NewMap(b Backend, env StructEnv, rootPtr Addr, nbuckets int) (Map, error) {
	return pds.NewMap(b, env, rootPtr, nbuckets)
}

// NewOrderedMap returns an OrderedMap over the root cell rootPtr on the
// chosen backend.
func NewOrderedMap(b Backend, env StructEnv, rootPtr Addr) (OrderedMap, error) {
	return pds.NewOrderedMap(b, env, rootPtr)
}

// NewQueue returns a Queue at base on the chosen backend (ring geometry
// for BackendMTM, unbounded two-list queue for BackendMOD).
func NewQueue(b Backend, env StructEnv, base Addr, capacity int, cellSize int64) (PQueue, error) {
	return pds.NewQueue(b, env, base, capacity, cellSize)
}
