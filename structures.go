package mnemosyne

import (
	"repro/internal/pds"
)

// Persistent data structures built on durable transactions, re-exported
// from internal/pds: the paper's microbenchmark hash table, the OpenLDAP
// conversion's AVL tree, the Tokyo Cabinet conversion's B+ tree, and the
// serialization comparison's red-black tree.

// ErrNotFound reports a lookup or delete of an absent key in any of the
// persistent data structures.
var ErrNotFound = pds.ErrNotFound

// HashTable is a persistent chained hash table (uint64 keys, byte-slice
// values).
type HashTable = pds.HashTable

// AVL is a persistent AVL tree (byte-string keys, byte-slice values).
type AVL = pds.AVL

// BPTree is a persistent B+ tree (uint64 keys, byte-slice values).
type BPTree = pds.BPTree

// RBTree is a persistent red-black tree with 128-byte nodes.
type RBTree = pds.RBTree

// CreateHashTable allocates a hash table with nbuckets chains, rooted at
// the persistent pointer rootPtr.
func CreateHashTable(th *Thread, rootPtr Addr, nbuckets int) (*HashTable, error) {
	return pds.CreateHashTable(th, rootPtr, nbuckets)
}

// OpenHashTable attaches to the hash table rooted at rootPtr. Any Reader
// works: a writing Tx or a snapshot ReadTx.
func OpenHashTable(tx Reader, rootPtr Addr) (*HashTable, error) {
	return pds.OpenHashTable(tx, rootPtr)
}

// NewAVL wraps the AVL tree rooted at the persistent pointer rootPtr
// (Nil means empty).
func NewAVL(rootPtr Addr) *AVL { return pds.NewAVL(rootPtr) }

// NewBPTree wraps the B+ tree rooted at rootPtr (Nil means empty).
func NewBPTree(rootPtr Addr) *BPTree { return pds.NewBPTree(rootPtr) }

// NewRBTree wraps the red-black tree rooted at rootPtr (Nil means empty).
func NewRBTree(rootPtr Addr) *RBTree { return pds.NewRBTree(rootPtr) }
